//! Workload-scale selection as an **online engine**: optimal index
//! configurations for N paths at once over a shared, delta-maintained
//! [`CandidateSpace`], with incremental re-optimization when the workload
//! evolves.
//!
//! The paper optimizes one path under a fixed access pattern; real advisor
//! deployments (CoPhy's what-if loops, Meta's AIM observe→re-optimize
//! cycle) face hundreds of overlapping paths whose population statistics,
//! update rates and query mix drift continuously. The advisor exploits two
//! structural facts:
//!
//! 1. **Processing cost is linear in the load** (Proposition 4.2 plus the
//!    `frequency × unit cost` shape of every `PC` term), so each cell
//!    splits exactly into a *query share* `Q_i(S, X)` — path-specific,
//!    because probe counts depend on the full path downstream of `S` — and
//!    a *maintenance share* `M(c, X)` that depends only on the physical
//!    candidate `c` — its step sequence, its embedded-vs-terminal role
//!    (part of the candidate identity: an embedded subpath absorbs the
//!    boundary `CMD` traffic of the class that follows it), and the shared
//!    per-class statistics and update rates — not on which path embeds it.
//! 2. **A physical index is built once.** When several paths allocate the
//!    same `(candidate, organization)`, its maintenance is paid once, so
//!    the workload objective is
//!    `Σ_i Q_i(selection_i) + Σ_{distinct (c, X) selected} M(c, X)`.
//!
//! # The evolving-workload model
//!
//! Mutations arrive through four entry points — [`WorkloadAdvisor::add_path`],
//! [`WorkloadAdvisor::remove_path`], [`WorkloadAdvisor::update_stats`],
//! [`WorkloadAdvisor::update_rates`] (plus the per-path
//! [`WorkloadAdvisor::update_query_rates`]) — which delta-maintain three
//! memo layers instead of discarding them (see DESIGN.md §5.11 for the
//! invalidation matrix):
//!
//! * the **interned candidate space**: refcounted per owning path, so a
//!   departing path frees exactly the candidates it alone exposed;
//! * the **maintenance memo** per `(candidate, organization)`: a class
//!   mutation invalidates only the candidates whose dependency set (step
//!   hierarchies + embedded boundary, per `oic_cost::invalidation`)
//!   contains that class;
//! * the **per-path artifacts**: query-share vectors, standalone optima and
//!   last best-response selections, invalidated only for paths whose scope
//!   contains a mutated class (or whose own query rates changed).
//!
//! [`WorkloadAdvisor::reoptimize`] then re-prices only the dirty paths and
//! re-runs the selection sweeps with memoized best responses: an untouched
//! path whose sharing context is unchanged is a cache hit, not a DP run.
//!
//! # Space budgets
//!
//! Every plan reports its physical footprint ([`WorkloadPlan::size_pages`]:
//! each distinct `(candidate, organization)`'s pages counted once, exactly
//! like its maintenance), and
//! [`WorkloadAdvisor::optimize_with_budget`] selects the cheapest plan
//! whose footprint fits a shared page budget — Lagrangian bisection on
//! `cost + λ·size` over the same sweep machinery, then a frontier-based
//! greedy repair pass (DESIGN.md §5.12). At infinite budget it returns the
//! unconstrained plan bit-identically.
//! The warm start is deliberately *computational*, not trajectorial — the
//! sweep replays the cold algorithm's exact iteration over cached values —
//! so an incremental `reoptimize()` returns a plan whose cost equals a
//! cold [`WorkloadAdvisor::optimize`] on a freshly
//! [rebuilt](WorkloadAdvisor::rebuild) advisor (the anchor invariant,
//! property-tested in `oic-sim/tests/evolving.rs`).
//!
//! **Invariant:** epoch mutations must go through the advisor API. Editing
//! a [`CandidateSpace`] directly bypasses the invalidation bookkeeping and
//! can leave stale maintenance prices in the memo.
//!
//! # Parallel engine
//!
//! The three hot per-path stages — cost-model construction + pricing,
//! standalone DP optima, and the best-response sweeps of the coordinate
//! descent — fan out over an [`oic_exec::Executor`] (default: one lane
//! per CPU, `OIC_THREADS` overrides, `1` = the sequential engine). The
//! parallel plan is **bit-identical** to the sequential one for every
//! thread count, telemetry included, by construction rather than by luck:
//! memo writes are buffered per path and merged in path-id order, the
//! descent's Gauss–Seidel trajectory is *speculated* in parallel and
//! committed sequentially (a speculation whose sharing context mismatches
//! is recomputed inline), and every float reduction keeps its value-sorted
//! summation order. DESIGN.md §5.13 states the contract;
//! `oic-sim/tests/parallel.rs` pins it across thread counts {1, 2, 8}.

use crate::select::{opt_ind_con_dp, prune_dominated};
use crate::shard::ShardIndex;
use crate::space::{CandidateId, CandidateSpace, CandidateStep};
use crate::{pc, Choice, CostMatrix, IndexConfiguration};
use oic_cost::{ClassStats, CostModel, CostParams, Org, PathCharacteristics};
use oic_exec::Executor;
use oic_schema::{ClassId, Path, PathSignature, Schema, SubpathId};
use oic_workload::{mining, LoadDistribution, MiningPolicy, Triplet};
use std::collections::HashMap;

/// Maximum coordinate-descent rounds; the objective is monotone, so this is
/// a safety net, not a tuning knob (workloads converge in 2–3 sweeps).
const MAX_SWEEPS: usize = 8;

/// One path's selection: the chosen `(subpath, organization)` pieces.
type Selection = Vec<(SubpathId, Org)>;

/// One eviction trial during the budgeted descent:
/// `(regret per page, evicted physical index, trial selections, cost, size)`.
type EvictionTrial = (f64, (CandidateId, Org), Vec<Selection>, f64, f64);

/// One round of parallel speculation, per path: `None` when the sweep memo
/// already answers the predicted sharing context (the commit loop will
/// take the memo hit), else the predicted context with the best response
/// the DP produced for it.
type SpeculationRound = Vec<Option<(Vec<u8>, Selection)>>;

/// Stable handle of one path in the advisor, valid across epochs until the
/// path is removed. Handles are never reused within one advisor.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PathId(u32);

impl PathId {
    /// The raw handle value (diagnostics only).
    pub fn raw(self) -> u32 {
        self.0
    }
}

/// Per-path engine state: the path, its load, and every cached artifact
/// with the dirty bits that gate recomputation.
#[derive(Debug)]
struct PathState {
    id: PathId,
    path: Path,
    /// Epoch-stable physical identity (used by re-arrival diagnostics).
    signature: PathSignature,
    /// Per-class query rates, dense by `ClassId`.
    alphas: Vec<f64>,
    /// Sorted class set whose statistics this path's query shares read
    /// (`oic_cost::invalidation::query_dependencies`).
    scope: Vec<ClassId>,
    /// Interned candidate per subpath rank — `None` when the mining
    /// admission policy dropped the rank (DESIGN.md §5.17): a mined-out
    /// subpath is never interned, never priced, and never offered to any
    /// DP. The path holds one reference to each live entry (released on
    /// removal).
    cands: Vec<Option<CandidateId>>,
    /// The admitted entries of `cands`, flattened in rank order — the
    /// slice the shard index, the release path and the component builder
    /// consume without re-flattening per call. Kept in sync at intern and
    /// re-mine time.
    live_cands: Vec<CandidateId>,
    /// Query share per rank and organization; valid unless `dirty_query`.
    query_costs: Vec<[f64; 3]>,
    /// Standalone optimum (selection + cost, maintenance unshared); `None`
    /// when stale.
    standalone: Option<(Selection, f64)>,
    /// Last best response: the sharing context (3-bit covered mask per
    /// rank) and the selection the DP produced for it. Valid across epochs
    /// while the path is clean — a sweep whose context matches is a memo
    /// hit, not a DP run.
    sweep_memo: Option<(Vec<u8>, Selection)>,
    /// Per-rank dominance prune mask (bit per organization; `0b111` = the
    /// whole rank is eliminated): cells provably absent from any best
    /// response, under any sharing context **and any λ ≥ 0** — the mask is
    /// size-aware, so it holds for every `cost + λ·size` pricing the
    /// budgeted search runs (DESIGN.md §5.15/§5.17). `None` when stale —
    /// or always, in the unsharded engine.
    pruned: Option<Vec<u8>>,
    /// Query shares stale (class statistics in scope, or own rates, moved).
    dirty_query: bool,
    /// Maintenance prices of this path's candidates possibly unpriced.
    dirty_maint: bool,
}

impl PathState {
    /// The interned candidate at a *selected* rank. Selections only ever
    /// cite admitted ranks — mined-out cells price at ∞, and singletons
    /// are always admitted, so every DP has a finite tiling to pick.
    fn cand(&self, sub: SubpathId) -> CandidateId {
        self.cands[sub.rank(self.path.len())].expect("selected rank admitted")
    }
}

/// One path's outcome in a [`WorkloadPlan`].
#[derive(Debug, Clone)]
pub struct PathOutcome {
    /// The advisor handle of the path.
    pub id: PathId,
    /// The path.
    pub path: Path,
    /// The selected configuration.
    pub selection: IndexConfiguration,
    /// The path-specific query share of the selection's cost.
    pub query_cost: f64,
    /// What the path would cost optimizing alone (paying all maintenance
    /// itself) — the single-path `Opt_Ind_Con` baseline.
    pub standalone_cost: f64,
}

/// A physical index selected by two or more paths.
#[derive(Debug, Clone)]
pub struct SharedIndexOutcome {
    /// The interned candidate.
    pub candidate: CandidateId,
    /// Its organization.
    pub org: Org,
    /// Indices (into [`WorkloadPlan::paths`]) of the owning paths.
    pub owners: Vec<usize>,
    /// The maintenance price, paid once.
    pub maintenance: f64,
    /// Maintenance avoided versus every owner paying separately.
    pub saving: f64,
}

/// The answer of [`WorkloadAdvisor::what_if`]: one candidate physical
/// index priced *hypothetically* — query benefit per subscribing path plus
/// maintenance and footprint per organization — without adopting anything.
///
/// When the candidate is live and fully priced (it belongs to the adopted
/// workload and the last `(re)optimize` priced it), every number is read
/// from the live memos, so the report reproduces the adopted pricing
/// **bitwise** (`adopted = true`). Otherwise the candidate is priced
/// standalone from the current statistics and rates — the same arithmetic
/// the re-pricing phase would run if the candidate were interned — with no
/// subscriber attribution (`adopted = false`, it is not part of any plan).
#[derive(Debug, Clone)]
pub struct WhatIfReport {
    /// The candidate's step sequence.
    pub steps: Vec<CandidateStep>,
    /// Its role: embedded (more steps follow in the probing path) or
    /// terminal. The two price differently (boundary `CMD`, key domain).
    pub embedded: bool,
    /// The live candidate id, when some path currently exposes this exact
    /// `(steps, role)` spelling.
    pub candidate: Option<CandidateId>,
    /// `true` when every price below came from the adopted memos.
    pub adopted: bool,
    /// Maintenance price per organization (`Org::ALL` order), paid once
    /// regardless of subscriber count.
    pub maintenance: [f64; 3],
    /// Footprint in pages per organization, counted once likewise.
    pub size_pages: [f64; 3],
    /// Live paths that expose this candidate, with their query shares —
    /// the per-subscriber benefit side of the what-if ledger. Empty for a
    /// hypothetical candidate.
    pub subscribers: Vec<WhatIfSubscriber>,
}

/// One subscribing path in a [`WhatIfReport`].
#[derive(Debug, Clone)]
pub struct WhatIfSubscriber {
    /// The subscribing path.
    pub path: PathId,
    /// Where the candidate sits in that path.
    pub sub: SubpathId,
    /// The path's query share per organization were this candidate
    /// selected there (`Org::ALL` order).
    pub query_costs: [f64; 3],
}

/// The workload-scale physical design, with the epoch telemetry that makes
/// incremental re-optimization auditable.
#[derive(Debug)]
pub struct WorkloadPlan {
    /// Per-path outcomes, in insertion order.
    pub paths: Vec<PathOutcome>,
    /// Physical indexes shared by ≥ 2 paths, in deterministic order.
    pub shared: Vec<SharedIndexOutcome>,
    /// Σ of the standalone per-path optima.
    pub independent_cost: f64,
    /// The workload objective of the final selection: per-path query shares
    /// plus each distinct physical index's maintenance, once.
    pub total_cost: f64,
    /// Total footprint in pages of the plan's physical indexes: each
    /// distinct `(candidate, organization)` counted **once**, exactly like
    /// its maintenance — a shared index occupies its pages once no matter
    /// how many paths route through it.
    pub size_pages: f64,
    /// Distinct `(candidate, organization)` pairs selected — the number of
    /// physical indexes the plan actually builds.
    pub physical_indexes: usize,
    /// Live physical candidates interned across the workload.
    pub candidates: usize,
    /// Maintenance prices computed since the advisor was created
    /// (cumulative memo misses). Within one epoch this grows by at most
    /// `3 ×` the candidates touched by that epoch's mutations.
    pub maintenance_pricings: u64,
    /// Maintenance prices computed during *this* re-optimization.
    pub epoch_pricings: u64,
    /// Coordinate-descent rounds until the selections stabilized.
    pub sweeps: usize,
    /// 1-based re-optimization epoch (how many plans this advisor built).
    pub epoch: u64,
    /// Mutations applied since the previous plan.
    pub mutations: u64,
    /// Paths whose models were rebuilt this epoch (the dirty set).
    pub repriced_paths: usize,
    /// Per-path DP selections actually run this epoch.
    pub dp_runs: u64,
    /// Per-path DP selections answered from the best-response memo.
    pub dp_memo_hits: u64,
    /// Candidate-sharing components of the workload: groups of paths
    /// connected by chains of shared physical candidates. Paths in
    /// different components share no index, so the descent decomposes
    /// exactly across them (DESIGN.md §5.15).
    pub components: usize,
    /// Paths in the largest component.
    pub largest_component: usize,
    /// `(rank, organization)` matrix cells the dominance pruner removed
    /// from the best-response DPs this epoch (0 in the unsharded engine).
    pub candidates_pruned: u64,
    /// Singleton components whose descent was skipped outright — their
    /// standalone optimum *is* the fixed point (0 in the unsharded
    /// engine).
    pub speculation_skips: u64,
    /// Candidate ranks the mining admission policy dropped across the
    /// live workload (Σ per-path mined-out ranks): subpaths never
    /// interned, priced, or offered to any DP. 0 when mining is off or
    /// nothing falls below the support threshold (DESIGN.md §5.17).
    pub candidates_mined_out: u64,
    /// Matrix cells (rank × organization) the re-pricing phase never
    /// visited this epoch because their rank was mined out — pricing work
    /// the admission policy deleted before it existed. Counted over the
    /// dirty (repriced) paths only, like `epoch_pricings`.
    pub cells_skipped: u64,
    /// Cells struck by the λ-uniform dominance mask while budgeted λ
    /// sweeps actually ran — evidence the budgeted search priced under
    /// pruning. 0 in an unconstrained plan, when the budget was slack, or
    /// in the unsharded engine (which keeps no masks).
    pub lambda_pruned: u64,
}

/// A [`WorkloadPlan`] selected under a shared page budget, with the
/// Lagrangian search telemetry. Produced by
/// [`WorkloadAdvisor::optimize_with_budget`].
#[derive(Debug)]
pub struct BudgetedWorkloadPlan {
    /// The selected plan; [`WorkloadPlan::size_pages`] is its footprint
    /// (each distinct physical index's pages counted once).
    pub plan: WorkloadPlan,
    /// The budget the selection ran under.
    pub budget_pages: f64,
    /// Whether the plan fits the budget. `false` only when even the most
    /// size-averse sweep exceeds it (budget below the workload's minimum
    /// footprint); the returned plan is then that leanest plan.
    pub feasible: bool,
    /// The Lagrange multiplier of the λ sweep that produced the plan; 0
    /// when the plan did not come from a λ sweep — the unconstrained
    /// optimum already fit, or the greedy eviction descent won.
    pub lambda: f64,
    /// λ-priced coordinate-descent sweeps run (bracketing + bisection).
    pub lambda_sweeps: usize,
    /// Per-path selections replaced by the frontier repair pass.
    pub repairs: usize,
    /// Cost of the unconstrained optimum (the budget-∞ baseline).
    pub unconstrained_cost: f64,
    /// Footprint of the unconstrained optimum.
    pub unconstrained_size: f64,
}

impl BudgetedWorkloadPlan {
    /// `total_cost / unconstrained_cost` — the price of the budget, ≥ 1 up
    /// to float noise (1 when the budget is slack).
    pub fn cost_ratio(&self) -> f64 {
        self.plan.total_cost / self.unconstrained_cost
    }

    /// [`WorkloadPlan::assert_bit_identical_to`] extended over the budget
    /// search's own outcome: feasibility, the winning λ, and the
    /// sweep/repair telemetry must match too.
    pub fn assert_bit_identical_to(&self, other: &BudgetedWorkloadPlan, ctx: &str) {
        self.plan.assert_bit_identical_to(&other.plan, ctx);
        assert_eq!(self.feasible, other.feasible, "{ctx}: feasibility");
        assert_eq!(self.lambda.to_bits(), other.lambda.to_bits(), "{ctx}: λ");
        assert_eq!(self.lambda_sweeps, other.lambda_sweeps, "{ctx}: λ sweeps");
        assert_eq!(self.repairs, other.repairs, "{ctx}: repairs");
        assert_eq!(
            self.unconstrained_cost.to_bits(),
            other.unconstrained_cost.to_bits(),
            "{ctx}: unconstrained cost"
        );
        assert_eq!(
            self.unconstrained_size.to_bits(),
            other.unconstrained_size.to_bits(),
            "{ctx}: unconstrained size"
        );
    }

    /// [`WorkloadPlan::assert_same_plan`] extended over the budget
    /// search's outcome. The λ sweeps, the eviction descent and the repair
    /// pass see bitwise-identical prices in both engines: the sharded
    /// engine's dominance mask is λ-uniform (a struck cell is beaten in
    /// both cost and size, so no `cost + λ·size` pricing can ever select
    /// it), which makes masked and unmasked sweeps agree bitwise — so
    /// everything except the inner epoch's work counters must agree
    /// across engines.
    pub fn assert_same_plan(&self, other: &BudgetedWorkloadPlan, ctx: &str) {
        self.plan.assert_same_plan(&other.plan, ctx);
        assert_eq!(self.feasible, other.feasible, "{ctx}: feasibility");
        assert_eq!(self.lambda.to_bits(), other.lambda.to_bits(), "{ctx}: λ");
        assert_eq!(self.lambda_sweeps, other.lambda_sweeps, "{ctx}: λ sweeps");
        assert_eq!(self.repairs, other.repairs, "{ctx}: repairs");
        assert_eq!(
            self.unconstrained_cost.to_bits(),
            other.unconstrained_cost.to_bits(),
            "{ctx}: unconstrained cost"
        );
        assert_eq!(
            self.unconstrained_size.to_bits(),
            other.unconstrained_size.to_bits(),
            "{ctx}: unconstrained size"
        );
    }
}

/// The online workload-scale advisor. Class statistics and maintenance
/// rates are shared across the workload — the consistency that makes a
/// shared physical index's maintenance a property of the candidate alone;
/// query rates are per path.
///
/// Build one with [`WorkloadAdvisor::new`] (+ the chainable
/// [`WorkloadAdvisor::with_stats`] / [`WorkloadAdvisor::with_maintenance`]),
/// feed it paths with [`WorkloadAdvisor::add_path`], and call
/// [`WorkloadAdvisor::optimize`]. As the workload evolves, apply mutations
/// and call [`WorkloadAdvisor::reoptimize`] — the result is identical to a
/// cold run on the mutated workload, at a fraction of the work.
pub struct WorkloadAdvisor<'a> {
    schema: &'a Schema,
    params: CostParams,
    /// `ClassStats` per class, dense by `ClassId`.
    stats: Vec<ClassStats>,
    /// `(β, γ)` insert/delete rates per class, dense by `ClassId`.
    maint: Vec<(f64, f64)>,
    /// Live paths in insertion order (removal preserves relative order).
    paths: Vec<PathState>,
    /// Shared candidate arena + maintenance memo.
    space: CandidateSpace,
    next_id: u32,
    /// Completed re-optimizations.
    epoch: u64,
    /// Mutations applied since the last completed re-optimization.
    mutations: u64,
    /// How the per-path stages run: inline, or fanned out over a pool.
    /// Either way the plan is bit-identical (DESIGN.md §5.13).
    exec: Executor,
    /// Incremental union-find over the live paths, keyed by shared
    /// candidates — the component decomposition of the sharded descent.
    shards: ShardIndex,
    /// Per-signature query-pricing basis: retrieval coefficients priced
    /// once per distinct path signature, evaluated per path against its
    /// own query rates (sharded engine only). `update_stats` evicts the
    /// bases whose scope contains the mutated class.
    basis: HashMap<PathSignature, QueryBasis>,
    /// Engine gate: component-sharded descent + dominance pruning +
    /// per-signature query bases. Off = the legacy global engine,
    /// verbatim. Plans are identical in content either way (DESIGN.md
    /// §5.15).
    sharding: bool,
    /// The mined-admission policy: which candidate subpaths clear the
    /// support threshold and get interned at all (DESIGN.md §5.17). The
    /// default admits everything — today's space, bitwise.
    mining: MiningPolicy,
    /// Mining master switch: `OIC_MINE=0` in the environment forces
    /// admit-all regardless of the policy — the escape hatch CI runs the
    /// whole suite under.
    mine_enabled: bool,
}

/// One dirty path's buffered re-pricing output, computed read-only on a
/// worker and merged into the advisor (memo installs in path-id order) on
/// the caller — see `WorkloadAdvisor::reprice_compute`.
struct RepriceOut {
    /// Fresh query shares, when the path's were stale.
    query_costs: Option<Vec<[f64; 3]>>,
    /// `(candidate, org, maintenance, size)` for every cell that was
    /// unpriced when the pricing phase began.
    cells: Vec<(CandidateId, Org, f64, f64)>,
}

/// One component's buffered descent output, computed read-only on a worker
/// and installed into the advisor (selections, sweep memos, work counters)
/// by the caller in component order — see
/// `WorkloadAdvisor::descend_component`.
struct CompOut {
    /// Converged selection per member, in component order.
    sels: Vec<Selection>,
    /// Final sweep memo per member, in component order.
    memos: Vec<Option<(Vec<u8>, Selection)>>,
    /// Sweeps this component ran until convergence.
    sweeps: usize,
    /// Context-keyed DP invocations inside this component.
    dp_runs: u64,
    /// Context-keyed memo hits inside this component.
    dp_memo_hits: u64,
}

/// Per-signature query-retrieval basis: the per-slot retrieval
/// coefficients of one path *shape*, priced once and re-evaluated against
/// any path of the same signature under any query rates.
///
/// Query retrieval costs (`model.retrieval*`) depend only on the path's
/// class statistics and the physical parameters — never on query,
/// insert/delete, or maintenance rates — so every path sharing a signature
/// (same classes step for step, hence the same characteristics and cost
/// model) shares these coefficients exactly. [`QueryBasis::eval`] replays
/// the legacy per-path pricing arithmetic — same slot order, same guards,
/// same fold — term for term, so the shares it produces are **bitwise**
/// the ones `Path::query_cost_shares` computes from scratch (property
/// tested; DESIGN.md §5.15).
struct QueryBasis {
    /// The representative path's scope (sorted class ids) — the
    /// invalidation key: `update_stats(c, ..)` evicts every basis whose
    /// scope contains `c`.
    scope: Vec<ClassId>,
    /// Classes per position (`Path::scope_by_position`): `classes[l - 1]`
    /// is position `l`'s native-slot class list, in hierarchy order.
    classes: Vec<Vec<ClassId>>,
    /// Per rank, per organization: the retrieval coefficient of each
    /// native slot `(l, x)` in the legacy accumulation order (`l`
    /// ascending through the subpath, `x` ascending within the position).
    coeffs: Vec<[Vec<f64>; 3]>,
    /// Per rank, per organization: the traversal-retrieval coefficient
    /// (multiplies the upstream query mass when the subpath starts past
    /// position 1).
    traversal: Vec<[f64; 3]>,
}

impl QueryBasis {
    /// Prices the retrieval coefficients of `st`'s path shape: one cost
    /// model build, then every `(rank, org, slot)` retrieval unit cost in
    /// the exact order `pc::processing_cost` visits them.
    fn build(schema: &Schema, params: CostParams, stats: &[ClassStats], st: &PathState) -> Self {
        let chars = PathCharacteristics::build(schema, &st.path, |c| stats[c.index()]);
        let model = CostModel::new(schema, &st.path, &chars, params);
        let n = st.path.len();
        let classes = st.path.scope_by_position(schema);
        let mut coeffs = Vec::with_capacity(SubpathId::count(n));
        let mut traversal = Vec::with_capacity(SubpathId::count(n));
        for r in 0..SubpathId::count(n) {
            let sub = SubpathId::from_rank(n, r);
            let mut per_org: [Vec<f64>; 3] = [Vec::new(), Vec::new(), Vec::new()];
            let mut trav = [0.0; 3];
            for org in Org::ALL {
                let slots = &mut per_org[org.index()];
                for l in sub.start..=sub.end {
                    for x in 0..classes[l - 1].len() {
                        slots.push(model.retrieval(org, sub, l, x));
                    }
                }
                trav[org.index()] = model.retrieval_traversal(org, sub);
            }
            coeffs.push(per_org);
            traversal.push(trav);
        }
        QueryBasis {
            scope: st.scope.clone(),
            classes,
            coeffs,
            traversal,
        }
    }

    /// Query shares of a path of this signature under per-class query
    /// rates `alphas` — a bitwise replay of the from-scratch pricing:
    /// native slots accumulate in `(l ascending, x ascending)` order with
    /// the same `mass > 0.0` guards, and the upstream masses are snapshots
    /// of the one left-to-right fold `upstream_query_mass` runs, added
    /// last with the same guard (query-only loads never fire the
    /// insert/delete or boundary-deletion terms, so those contribute
    /// exactly nothing here as there).
    ///
    /// The basis is shared per signature but admission is per path, so
    /// `cands` gates the replay: a mined-out rank has no cell to price
    /// and its arithmetic is skipped wholesale.
    fn eval(&self, alphas: &[f64], n: usize, cands: &[Option<CandidateId>]) -> Vec<[f64; 3]> {
        let mut upstream = vec![0.0; n + 1];
        let mut acc = 0.0;
        for (p, classes) in self.classes.iter().enumerate() {
            for &c in classes {
                acc += alphas[c.index()];
            }
            upstream[p + 1] = acc;
        }
        (0..SubpathId::count(n))
            .map(|r| {
                if cands[r].is_none() {
                    return [0.0; 3];
                }
                let sub = SubpathId::from_rank(n, r);
                let mut cell = [0.0; 3];
                for org in Org::ALL {
                    let coeffs = &self.coeffs[r][org.index()];
                    let mut total = 0.0;
                    let mut k = 0;
                    for l in sub.start..=sub.end {
                        for &c in &self.classes[l - 1] {
                            let a = alphas[c.index()];
                            if a > 0.0 {
                                total += a * coeffs[k];
                            }
                            k += 1;
                        }
                    }
                    let t = upstream[sub.start - 1];
                    if t > 0.0 {
                        total += t * self.traversal[r][org.index()];
                    }
                    cell[org.index()] = total;
                }
                cell
            })
            .collect()
    }
}

impl<'a> WorkloadAdvisor<'a> {
    /// Binds the schema and physical parameters. Every class starts with
    /// singleton statistics and zero maintenance; override with
    /// [`Self::with_stats`] / [`Self::with_maintenance`] (or later, per
    /// class, with [`Self::update_stats`] / [`Self::update_rates`]).
    pub fn new(schema: &'a Schema, params: CostParams) -> Self {
        let nc = schema.class_count();
        WorkloadAdvisor {
            schema,
            params,
            stats: vec![ClassStats::new(1.0, 1.0, 1.0); nc],
            maint: vec![(0.0, 0.0); nc],
            paths: Vec::new(),
            space: CandidateSpace::new(),
            next_id: 0,
            epoch: 0,
            mutations: 0,
            exec: Executor::from_env(),
            shards: ShardIndex::new(),
            basis: HashMap::new(),
            sharding: std::env::var("OIC_SHARDS").map_or(true, |v| v != "1"),
            mining: MiningPolicy::default(),
            mine_enabled: std::env::var("OIC_MINE").map_or(true, |v| v != "0"),
        }
    }

    /// Replaces the executor the per-path stages run on (chainable). The
    /// default is [`Executor::from_env`]; the plan is bit-identical for
    /// any choice, so this is purely a wall-clock knob.
    pub fn with_executor(mut self, exec: Executor) -> Self {
        self.exec = exec;
        self
    }

    /// [`Self::with_executor`] by lane count: `1` is the sequential
    /// engine, `n ≥ 2` recruits `n - 1` shared pool workers.
    pub fn with_threads(self, threads: usize) -> Self {
        self.with_executor(Executor::with_threads(threads))
    }

    /// The executor the per-path stages run on.
    pub fn executor(&self) -> &Executor {
        &self.exec
    }

    /// Toggles the sharded engine (component decomposition, dominance
    /// pruning, per-signature query bases — DESIGN.md §5.15). On by
    /// default; setting `OIC_SHARDS=1` in the environment forces it off.
    /// The plan content is identical either way (property-tested in
    /// `oic-sim`), so like the executor this is a wall-clock knob, not a
    /// semantic one.
    pub fn with_sharding(mut self, on: bool) -> Self {
        self.sharding = on;
        // Prune masks are refreshed by the sharded engine's own pricing
        // pass; a mask computed under the other setting may never be
        // refreshed again, so drop them all on a toggle.
        for st in &mut self.paths {
            st.pruned = None;
        }
        self
    }

    /// Sets the mined-admission policy (chainable) and re-mines every
    /// live path under it: ranks below the support threshold are released
    /// from the space, newly admitted ranks are interned, in rank order.
    /// [`MiningPolicy::default`] (support 0) admits everything — the
    /// unmined candidate space, and therefore the unmined plan, bitwise.
    /// `OIC_MINE=0` in the environment forces admit-all regardless of the
    /// policy.
    pub fn with_mining(mut self, policy: MiningPolicy) -> Self {
        self.mining = policy;
        for i in 0..self.paths.len() {
            self.remine_path(i);
        }
        self
    }

    /// The effective mined-admission policy: the adopted one, or
    /// admit-all when `OIC_MINE=0` disabled mining wholesale.
    pub fn mining_policy(&self) -> MiningPolicy {
        if self.mine_enabled {
            self.mining
        } else {
            MiningPolicy::default()
        }
    }

    /// Sets the shared per-class statistics (chainable; equivalent to
    /// [`Self::update_stats`] per class).
    pub fn with_stats(mut self, mut stats: impl FnMut(ClassId) -> ClassStats) -> Self {
        for c in self.schema.class_ids() {
            self.update_stats(c, stats(c));
        }
        self
    }

    /// Sets the shared per-class `(insert, delete)` rates (chainable;
    /// equivalent to [`Self::update_rates`] per class).
    pub fn with_maintenance(mut self, mut rates: impl FnMut(ClassId) -> (f64, f64)) -> Self {
        for c in self.schema.class_ids() {
            self.update_rates(c, rates(c));
        }
        self
    }

    // ---- epoch mutations --------------------------------------------------

    /// Adds one path with its per-class query rates, interning (and
    /// refcounting) its candidates into the shared space. Returns the
    /// path's stable handle.
    pub fn add_path(&mut self, path: Path, mut queries: impl FnMut(ClassId) -> f64) -> PathId {
        let alphas = self.schema.class_ids().map(&mut queries).collect();
        self.add_path_dense(path, alphas)
    }

    /// [`Self::add_path`] with the dense per-class rate vector prebuilt.
    pub fn add_path_dense(&mut self, path: Path, alphas: Vec<f64>) -> PathId {
        assert_eq!(alphas.len(), self.schema.class_count());
        let id = PathId(self.next_id);
        self.next_id += 1;
        let admitted = Self::admitted_ranks(self.schema, self.mining_policy(), &path, &alphas);
        let cands = self
            .space
            .intern_path_admitted(self.schema, &path, &admitted);
        let live_cands: Vec<CandidateId> = cands.iter().filter_map(|&c| c).collect();
        self.shards.add_path(id.0, &live_cands);
        let n = path.len();
        self.paths.push(PathState {
            id,
            signature: path.signature(),
            scope: oic_cost::invalidation::query_dependencies(self.schema, &path),
            alphas,
            cands,
            live_cands,
            query_costs: vec![[0.0; 3]; SubpathId::count(n)],
            standalone: None,
            sweep_memo: None,
            pruned: None,
            dirty_query: true,
            dirty_maint: true,
            path,
        });
        self.mutations += 1;
        id
    }

    /// Removes a path, releasing its candidate references; candidates it
    /// alone exposed are freed from the space (their ids recycle) and can
    /// never be cited by a subsequent plan. Returns the removed path, or
    /// `None` for an unknown/already-removed handle.
    pub fn remove_path(&mut self, id: PathId) -> Option<Path> {
        let i = self.find(id)?;
        let st = self.paths.remove(i);
        self.space.release_path(&st.live_cands);
        self.shards.remove_path();
        self.mutations += 1;
        Some(st.path)
    }

    /// Updates one class's shared statistics, invalidating exactly the
    /// memo layers that read them: the maintenance prices of candidates
    /// whose dependency set contains `class`, and every cached artifact of
    /// paths whose scope contains it. A no-op (returning `false`) when the
    /// statistics are unchanged.
    pub fn update_stats(&mut self, class: ClassId, stats: ClassStats) -> bool {
        if self.stats[class.index()] == stats {
            return false;
        }
        self.stats[class.index()] = stats;
        self.space.invalidate_class(class);
        // Retrieval coefficients read class statistics; evict the bases
        // that depend on the mutated class (rate churn leaves them alone —
        // they are maintenance- and α-blind).
        self.basis
            .retain(|_, b| b.scope.binary_search(&class).is_err());
        for st in &mut self.paths {
            if st.scope.binary_search(&class).is_ok() {
                st.dirty_query = true;
                st.dirty_maint = true;
                st.standalone = None;
                st.sweep_memo = None;
            }
        }
        self.mutations += 1;
        true
    }

    /// Updates one class's shared `(insert, delete)` rates. Query shares
    /// are untouched (they are priced under the query-only load); the
    /// maintenance prices of dependent candidates are invalidated and the
    /// owning paths marked for re-pricing. A no-op when unchanged.
    pub fn update_rates(&mut self, class: ClassId, rates: (f64, f64)) -> bool {
        if self.maint[class.index()] == rates {
            return false;
        }
        self.maint[class.index()] = rates;
        self.space.invalidate_class(class);
        for st in &mut self.paths {
            if st.scope.binary_search(&class).is_ok() {
                st.dirty_maint = true;
                st.standalone = None;
                st.sweep_memo = None;
            }
        }
        self.mutations += 1;
        true
    }

    /// Replaces one path's per-class query rates. Only that path's query
    /// shares go stale — maintenance prices are query-blind. Like
    /// [`Self::update_stats`] / [`Self::update_rates`], returns whether a
    /// mutation was applied: `false` for an unknown handle *or* when the
    /// new rates equal the old ones (a recognized no-op).
    pub fn update_query_rates(
        &mut self,
        id: PathId,
        mut queries: impl FnMut(ClassId) -> f64,
    ) -> bool {
        let alphas: Vec<f64> = self.schema.class_ids().map(&mut queries).collect();
        let Some(i) = self.find(id) else {
            return false;
        };
        let st = &mut self.paths[i];
        if st.alphas == alphas {
            return false;
        }
        st.alphas = alphas;
        st.dirty_query = true;
        st.standalone = None;
        st.sweep_memo = None;
        self.mutations += 1;
        // Admission is a pure function of (policy, path, α): new rates can
        // move ranks across the support threshold, so re-mine. Same
        // verdict = recognized no-op, interning history untouched — which
        // keeps a warm advisor's candidate ids aligned with its cold
        // rebuild. Retunes re-mine through this same door: the tuner
        // pushes its live-estimator rates path by path.
        self.remine_path(i);
        true
    }

    /// The admission verdict of `path` under `policy` and per-class query
    /// rates `alphas`: one bool per subpath rank. The all-true fast path
    /// skips the miner entirely when the policy cannot gate.
    fn admitted_ranks(
        schema: &Schema,
        policy: MiningPolicy,
        path: &Path,
        alphas: &[f64],
    ) -> Vec<bool> {
        if !policy.is_gating() {
            return vec![true; SubpathId::count(path.len())];
        }
        let masses = mining::position_mass(schema, path, |c| alphas[c.index()]);
        mining::mine(&policy, &masses).admitted
    }

    /// Recomputes path `i`'s admission under the effective policy and
    /// re-interns its candidates when the verdict moved: dropped ranks
    /// are released from the space (freed when this path was their last
    /// owner), newly admitted ranks are interned in rank order, the shard
    /// index is dirty-marked (its next `components()` call rebuilds from
    /// the live slices), and every cached artifact of the path is
    /// invalidated. An unchanged verdict is a recognized no-op.
    fn remine_path(&mut self, i: usize) {
        let admitted = {
            let st = &self.paths[i];
            Self::admitted_ranks(self.schema, self.mining_policy(), &st.path, &st.alphas)
        };
        if admitted
            .iter()
            .zip(&self.paths[i].cands)
            .all(|(&a, c)| a == c.is_some())
        {
            return;
        }
        let old = std::mem::take(&mut self.paths[i].live_cands);
        self.space.release_path(&old);
        let cands = self
            .space
            .intern_path_admitted(self.schema, &self.paths[i].path, &admitted);
        let live_cands: Vec<CandidateId> = cands.iter().filter_map(|&c| c).collect();
        // The shard index keys components by candidate identity; a moved
        // admission set invalidates it wholesale (dirty-mark — the
        // rebuild happens lazily at the next components() call, against
        // every path's live slice).
        self.shards.remove_path();
        let st = &mut self.paths[i];
        st.cands = cands;
        st.live_cands = live_cands;
        st.dirty_query = true;
        st.dirty_maint = true;
        st.standalone = None;
        st.sweep_memo = None;
        st.pruned = None;
    }

    // ---- introspection ----------------------------------------------------

    /// Number of live paths.
    pub fn path_count(&self) -> usize {
        self.paths.len()
    }

    /// Live path handles, in insertion order — an iterator, so callers
    /// that want the first handle (or a count) never allocate a vector of
    /// 100k ids.
    pub fn path_ids(&self) -> impl Iterator<Item = PathId> + '_ {
        self.paths.iter().map(|st| st.id)
    }

    /// The path behind a handle.
    pub fn path(&self, id: PathId) -> Option<&Path> {
        self.find(id).map(|i| &self.paths[i].path)
    }

    /// The epoch-stable physical identity of a live path — equal for any
    /// later re-arrival of the same step sequence.
    pub fn path_signature(&self, id: PathId) -> Option<&PathSignature> {
        self.find(id).map(|i| &self.paths[i].signature)
    }

    /// The shared candidate space (read-only: epoch mutations must go
    /// through the advisor API so invalidation stays sound).
    pub fn candidate_space(&self) -> &CandidateSpace {
        &self.space
    }

    /// Completed re-optimizations.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Number of classes in the bound schema — the dense id range of the
    /// per-class statistics and rate vectors.
    pub fn class_count(&self) -> usize {
        self.stats.len()
    }

    /// The adopted `(insert, delete)` rates of a class — what the current
    /// plan was priced under. The online tuner compares these against its
    /// stream-derived estimates to detect drift.
    pub fn rates(&self, class: ClassId) -> (f64, f64) {
        self.maint[class.index()]
    }

    /// The adopted per-class query rates of a live path, dense by
    /// `ClassId`; `None` for an unknown/removed handle.
    pub fn query_rates(&self, id: PathId) -> Option<&[f64]> {
        self.find(id).map(|i| self.paths[i].alphas.as_slice())
    }

    /// The adopted query share of one `(subpath, organization)` cell of a
    /// live path — the exact memo value [`Self::selection_totals`] folds,
    /// read without any recomputation. `None` for an unknown handle or
    /// while the path's shares are stale (pending mutations not yet
    /// repriced). The migration planner captures interim prices through
    /// this so its endpoint costs equal [`Self::price_plan`] bitwise.
    pub(crate) fn query_share(&self, id: PathId, sub: SubpathId, org: Org) -> Option<f64> {
        let st = &self.paths[self.find(id)?];
        if st.dirty_query {
            return None;
        }
        Some(st.query_costs[sub.rank(st.path.len())][org.index()])
    }

    /// A cold copy: a fresh advisor over the same schema, parameters,
    /// statistics, rates, live paths (same order) and executor, with every
    /// cache empty. `rebuild().optimize()` is the from-scratch baseline
    /// that [`Self::reoptimize`] must match — benches time the two against
    /// each other; the property tests pin the cost equality.
    pub fn rebuild(&self) -> WorkloadAdvisor<'a> {
        let mut adv = WorkloadAdvisor::new(self.schema, self.params)
            .with_executor(self.exec.clone())
            .with_sharding(self.sharding)
            .with_mining(self.mining);
        adv.stats.clone_from(&self.stats);
        adv.maint.clone_from(&self.maint);
        for st in &self.paths {
            adv.add_path_dense(st.path.clone(), st.alphas.clone());
        }
        adv.mutations = 0;
        adv
    }

    fn find(&self, id: PathId) -> Option<usize> {
        self.paths.iter().position(|st| st.id == id)
    }

    // ---- (re-)optimization ------------------------------------------------

    /// Runs the workload-scale selection. On a freshly built advisor this
    /// is the cold path (everything is dirty); after mutations it is
    /// exactly [`Self::reoptimize`].
    pub fn optimize(&mut self) -> WorkloadPlan {
        self.reoptimize()
    }

    /// Incrementally re-optimizes the evolved workload.
    ///
    /// Three phases, each skipping clean work:
    ///
    /// 1. **Re-price** — rebuild the cost model for dirty paths only; the
    ///    maintenance memo turns shared-candidate pricing into hits except
    ///    for invalidated cells.
    /// 2. **Standalone** — recompute the per-path unshared optimum where
    ///    stale (it seeds the sweeps and prices `independent_cost`).
    /// 3. **Sweeps** — coordinate descent over all paths from the
    ///    standalone seed, replaying the cold trajectory; a path whose
    ///    sharing context matches its memoized best response is a cache
    ///    hit. Convergence: the objective is monotone nonincreasing.
    ///
    /// Because every cached value equals what a cold run would recompute
    /// and the trajectory is replayed rather than warm-seeded, the
    /// resulting plan cost **equals** a cold `optimize()` on
    /// [`Self::rebuild`] (up to float-summation noise; see DESIGN.md
    /// §5.11). An empty workload yields an empty plan.
    pub fn reoptimize(&mut self) -> WorkloadPlan {
        self.epoch += 1;
        let mutations = std::mem::take(&mut self.mutations);

        // Phase 1 — re-price dirty paths. Parallel mode computes each
        // dirty path's model + prices read-only into a buffer, then merges
        // the buffers in path-id order: a cell shared by several dirty
        // paths keeps the lowest-id owner's value, exactly like the
        // sequential first-owner-prices-it walk, so memo contents *and*
        // the pricing counter are bit-identical for any thread count.
        let pricings_before = self.space.maintenance_pricings();
        let dirty: Vec<usize> = (0..self.paths.len())
            .filter(|&i| self.paths[i].dirty_query || self.paths[i].dirty_maint)
            .collect();
        let repriced = dirty.len();

        // Basis prepass (sharded engine): among the query-dirty paths,
        // find the distinct signatures the per-signature basis cache does
        // not hold yet and price each **once** — instead of rebuilding a
        // full cost model per path. Only signatures shared by ≥ 2 dirty
        // paths are worth a basis (building one costs a full model pass;
        // a lone path prices cheaper from scratch, and does so in the
        // fallback arm of `reprice_compute`). Representatives are the
        // first dirty path of each qualifying signature, in path order,
        // and the merge installs in that same order, so the cache
        // contents are executor-independent.
        if self.sharding {
            let reps: Vec<usize> = {
                let mut members: HashMap<&PathSignature, (usize, usize)> = HashMap::new();
                for &i in &dirty {
                    let st = &self.paths[i];
                    if st.dirty_query && !self.basis.contains_key(&st.signature) {
                        members.entry(&st.signature).or_insert((i, 0)).1 += 1;
                    }
                }
                let mut firsts: Vec<usize> = members
                    .into_values()
                    .filter(|&(_, count)| count >= 2)
                    .map(|(first, _)| first)
                    .collect();
                firsts.sort_unstable();
                firsts
            };
            let built: Vec<QueryBasis> = if self.exec.is_parallel() && reps.len() > 1 {
                let paths = &self.paths;
                let stats = &self.stats;
                let (schema, params) = (self.schema, self.params);
                self.exec.par_map(&reps, |_, &i| {
                    QueryBasis::build(schema, params, stats, &paths[i])
                })
            } else {
                reps.iter()
                    .map(|&i| {
                        QueryBasis::build(self.schema, self.params, &self.stats, &self.paths[i])
                    })
                    .collect()
            };
            for (b, &i) in built.into_iter().zip(&reps) {
                self.basis.insert(self.paths[i].signature.clone(), b);
            }
        }

        if self.exec.is_parallel() && dirty.len() > 1 {
            let outs: Vec<RepriceOut> = {
                let paths = &self.paths;
                let space = &self.space;
                let stats = &self.stats;
                let maint = &self.maint;
                let basis = self.sharding.then_some(&self.basis);
                let (schema, params) = (self.schema, self.params);
                self.exec.par_map(&dirty, |_, &i| {
                    Self::reprice_compute(schema, params, stats, maint, space, basis, &paths[i])
                })
            };
            for (out, &i) in outs.into_iter().zip(&dirty) {
                for (cand, org, m, s) in out.cells {
                    // First-in-path-order install; later buffers hit.
                    self.space.maintenance_cost(cand, org, || m);
                    self.space.size_cost(cand, org, || s);
                }
                let st = &mut self.paths[i];
                if let Some(q) = out.query_costs {
                    st.query_costs = q;
                }
                st.dirty_query = false;
                st.dirty_maint = false;
            }
        } else {
            for &i in &dirty {
                self.reprice(i);
            }
        }

        // Dominance pruning (sharded engine): refresh the per-rank prune
        // masks of paths whose prices moved this epoch, or that never had
        // one. Masks read the **installed** maintenance and size prices —
        // exactly the values the best responses and the λ sweeps are
        // priced from — so the strict dominance argument (DESIGN.md
        // §5.15) holds bitwise, at λ = 0 and under every λ-priced sweep.
        let mut candidates_pruned = 0u64;
        if self.sharding {
            for i in 0..self.paths.len() {
                if self.paths[i].pruned.is_none() || dirty.binary_search(&i).is_ok() {
                    let mask = {
                        let st = &self.paths[i];
                        let mut maint = Vec::with_capacity(st.cands.len());
                        let mut sizes = Vec::with_capacity(st.cands.len());
                        for &cand in &st.cands {
                            // A mined-out rank prices at ∞ in both planes:
                            // it can neither be struck nor serve as a
                            // dominator or replacement (singleton ranks —
                            // the replacement pool — are always admitted).
                            let (mut m, mut s) = ([f64::INFINITY; 3], [f64::INFINITY; 3]);
                            if let Some(cand) = cand {
                                for org in Org::ALL {
                                    m[org.index()] = self
                                        .space
                                        .priced_maintenance(cand, org)
                                        .expect("maintenance priced during reprice");
                                    s[org.index()] = self
                                        .space
                                        .priced_size(cand, org)
                                        .expect("size priced during reprice");
                                }
                            }
                            maint.push(m);
                            sizes.push(s);
                        }
                        let mut mask =
                            prune_dominated(&st.query_costs, &maint, &sizes, st.path.len());
                        // Mined-out ranks are absent, not pruned: zero
                        // their bits so the pruning telemetry counts only
                        // real strikes.
                        for (m, c) in mask.iter_mut().zip(&st.cands) {
                            if c.is_none() {
                                *m = 0;
                            }
                        }
                        mask
                    };
                    self.paths[i].pruned = Some(mask);
                }
            }
            candidates_pruned = self
                .paths
                .iter()
                .map(|st| {
                    st.pruned
                        .as_deref()
                        .map_or(0, |m| m.iter().map(|b| u64::from(b.count_ones())).sum())
                })
                .sum();
        }

        // Phase 2 — standalone optima (maintenance unshared). Per-path
        // independent DPs over the now-frozen memo: embarrassingly
        // parallel, results written back in path order.
        let mut dp_runs = 0u64;
        let stale: Vec<usize> = (0..self.paths.len())
            .filter(|&i| self.paths[i].standalone.is_none())
            .collect();
        dp_runs += stale.len() as u64;
        if self.exec.is_parallel() && stale.len() > 1 {
            let results = {
                let paths = &self.paths;
                let space = &self.space;
                self.exec.par_map(&stale, |_, &i| {
                    let st = &paths[i];
                    Self::best_response(st, space, None, st.pruned.as_deref())
                })
            };
            for (result, &i) in results.into_iter().zip(&stale) {
                self.paths[i].standalone = Some(result);
            }
        } else {
            for &i in &stale {
                let st = &self.paths[i];
                let result = Self::best_response(st, &self.space, None, st.pruned.as_deref());
                self.paths[i].standalone = Some(result);
            }
        }
        let independent_cost: f64 = self
            .paths
            .iter()
            .map(|st| st.standalone.as_ref().expect("phase 2 filled it").1)
            .sum();

        // Component decomposition — computed in both engines (the shape
        // telemetry is plan content either way); only the sharded engine
        // descends per component.
        let comps = {
            let live: Vec<(u32, &[CandidateId])> = self
                .paths
                .iter()
                .map(|st| (st.id.0, st.live_cands.as_slice()))
                .collect();
            self.shards.components(&live)
        };
        let components = comps.len();
        let largest_component = comps.iter().map(Vec::len).max().unwrap_or(0);

        // Phase 3 — coordinate-descent sweeps from the standalone seed.
        let mut selections: Vec<Vec<(SubpathId, Org)>> = self
            .paths
            .iter()
            .map(|st| st.standalone.as_ref().expect("phase 2 filled it").0.clone())
            .collect();
        let mut sweeps = 0;
        let mut dp_memo_hits = 0u64;
        let mut speculation_skips = 0u64;
        if self.sharding {
            // Sharded descent (DESIGN.md §5.15): components share no
            // candidate, so the descent decomposes exactly. A singleton's
            // context is permanently all-zero — its standalone seed *is*
            // the fixed point — so only multi-path components run; they
            // fan out over the executor, weighted by member count, and
            // merge in component order. Per component the member visit
            // order is ascending, the same relative order the global loop
            // uses, so selections and sweep memos land bitwise where the
            // unsharded engine would put them.
            let jobs: Vec<(Vec<usize>, Vec<Selection>)> = comps
                .iter()
                .filter(|c| c.len() > 1)
                .map(|comp| {
                    let seeds = comp.iter().map(|&i| selections[i].clone()).collect();
                    (comp.clone(), seeds)
                })
                .collect();
            speculation_skips = (components - jobs.len()) as u64;
            let outs: Vec<CompOut> = if self.exec.is_parallel() && jobs.len() > 1 {
                let paths = &self.paths;
                let space = &self.space;
                self.exec.par_map_chunked(
                    &jobs,
                    |(comp, _)| comp.len(),
                    |_, (comp, seeds)| Self::descend_component(paths, space, comp, seeds.clone()),
                )
            } else {
                jobs.iter()
                    .map(|(comp, seeds)| {
                        Self::descend_component(&self.paths, &self.space, comp, seeds.clone())
                    })
                    .collect()
            };
            for (out, (comp, _)) in outs.into_iter().zip(&jobs) {
                for ((&i, sel), memo) in comp.iter().zip(out.sels).zip(out.memos) {
                    selections[i] = sel;
                    self.paths[i].sweep_memo = memo;
                }
                sweeps = sweeps.max(out.sweeps);
                dp_runs += out.dp_runs;
                dp_memo_hits += out.dp_memo_hits;
            }
            // An all-singleton (or empty) workload converges in the one
            // no-change round the global loop would have run.
            sweeps = sweeps.max(1);
        } else {
            self.global_descent(
                &mut selections,
                &mut sweeps,
                &mut dp_runs,
                &mut dp_memo_hits,
            );
        }
        let mut plan = self.assemble_plan(&selections, independent_cost);
        debug_assert!(
            plan.total_cost <= independent_cost + 1e-6 * independent_cost.abs().max(1.0),
            "sharing can only reduce the objective: {} vs {independent_cost}",
            plan.total_cost
        );
        plan.epoch_pricings = self.space.maintenance_pricings() - pricings_before;
        plan.sweeps = sweeps;
        plan.mutations = mutations;
        plan.repriced_paths = repriced;
        plan.dp_runs = dp_runs;
        plan.dp_memo_hits = dp_memo_hits;
        plan.components = components;
        plan.largest_component = largest_component;
        plan.candidates_pruned = candidates_pruned;
        plan.speculation_skips = speculation_skips;
        plan.candidates_mined_out = self
            .paths
            .iter()
            .map(|st| st.cands.iter().filter(|c| c.is_none()).count() as u64)
            .sum();
        // Cells the admission policy deleted from this epoch's re-pricing:
        // 3 organizations per mined-out rank, over the dirty paths the
        // phase actually visited (clean paths priced nothing either way).
        plan.cells_skipped = dirty
            .iter()
            .map(|&i| 3 * self.paths[i].cands.iter().filter(|c| c.is_none()).count() as u64)
            .sum();
        plan
    }

    /// The legacy global coordinate-descent loop — every path revisited
    /// each sweep over one workload-wide ownership map. This is the
    /// unsharded engine's phase 3, kept verbatim as the baseline the
    /// sharded descent is measured (and property-tested) against.
    fn global_descent(
        &mut self,
        selections: &mut [Selection],
        sweeps: &mut usize,
        dp_runs: &mut u64,
        dp_memo_hits: &mut u64,
    ) {
        let mut owned: HashMap<(CandidateId, Org), usize> = HashMap::new();
        for (st, sel) in self.paths.iter().zip(selections.iter()) {
            for &(sub, org) in sel {
                *owned.entry((st.cand(sub), org)).or_default() += 1;
            }
        }
        for _ in 0..MAX_SWEEPS {
            *sweeps += 1;
            // Speculate the round's best responses in parallel against the
            // round-start ownership snapshot; the sequential commit below
            // adopts a speculation only when its predicted sharing context
            // matches the actual (Gauss–Seidel) one, so the trajectory —
            // and the plan — is bit-identical to the sequential engine.
            let specs: Option<SpeculationRound> = if self.exec.is_parallel() && self.paths.len() > 1
            {
                Some(self.speculate_round(&owned, selections, None))
            } else {
                None
            };
            let mut changed = false;
            for (i, sel) in selections.iter_mut().enumerate() {
                let st = &self.paths[i];
                for &(sub, org) in sel.iter() {
                    let key = (st.cand(sub), org);
                    let count = owned.get_mut(&key).expect("selection was registered");
                    *count -= 1;
                    if *count == 0 {
                        owned.remove(&key);
                    }
                }
                let context = Self::context_key(st, &owned);
                let pairs = match &st.sweep_memo {
                    Some((key, pairs)) if *key == context => {
                        *dp_memo_hits += 1;
                        pairs.clone()
                    }
                    _ => {
                        *dp_runs += 1;
                        let pairs = match specs.as_ref().and_then(|s| s[i].as_ref()) {
                            // The DP is a pure function of (path, memo,
                            // context): a context-matching speculation IS
                            // the sequential result.
                            Some((pred, pairs)) if *pred == context => pairs.clone(),
                            _ => {
                                Self::best_response(
                                    st,
                                    &self.space,
                                    Some(&context),
                                    st.pruned.as_deref(),
                                )
                                .0
                            }
                        };
                        self.paths[i].sweep_memo = Some((context, pairs.clone()));
                        pairs
                    }
                };
                let st = &self.paths[i];
                changed |= pairs != *sel;
                for &(sub, org) in &pairs {
                    *owned.entry((st.cand(sub), org)).or_default() += 1;
                }
                *sel = pairs;
            }
            if !changed {
                break;
            }
        }
    }

    /// One candidate-disjoint component's coordinate descent,
    /// self-contained: members share no candidate with any other path, so
    /// a local ownership map over the members alone is the **exact**
    /// sharing context. Sequential Gauss–Seidel in ascending member order
    /// — the same relative order the global loop visits those paths in —
    /// with no speculation: the component is one worker's job, so there is
    /// nothing to overlap. Read-only against the advisor (runs on pool
    /// workers); selections, sweep-memo updates and work counters are
    /// buffered in the output and installed by the caller in component
    /// order.
    fn descend_component(
        paths: &[PathState],
        space: &CandidateSpace,
        comp: &[usize],
        seeds: Vec<Selection>,
    ) -> CompOut {
        let mut sels = seeds;
        let mut memos: Vec<Option<(Vec<u8>, Selection)>> =
            comp.iter().map(|&i| paths[i].sweep_memo.clone()).collect();
        let mut owned: HashMap<(CandidateId, Org), usize> = HashMap::new();
        for (k, &i) in comp.iter().enumerate() {
            let st = &paths[i];
            for &(sub, org) in &sels[k] {
                *owned.entry((st.cand(sub), org)).or_default() += 1;
            }
        }
        let mut sweeps = 0;
        let mut dp_runs = 0u64;
        let mut dp_memo_hits = 0u64;
        for _ in 0..MAX_SWEEPS {
            sweeps += 1;
            let mut changed = false;
            for (k, &i) in comp.iter().enumerate() {
                let st = &paths[i];
                for &(sub, org) in sels[k].iter() {
                    let key = (st.cand(sub), org);
                    let count = owned.get_mut(&key).expect("selection was registered");
                    *count -= 1;
                    if *count == 0 {
                        owned.remove(&key);
                    }
                }
                let context = Self::context_key(st, &owned);
                let pairs = match &memos[k] {
                    Some((key, pairs)) if *key == context => {
                        dp_memo_hits += 1;
                        pairs.clone()
                    }
                    _ => {
                        dp_runs += 1;
                        let pairs =
                            Self::best_response(st, space, Some(&context), st.pruned.as_deref()).0;
                        memos[k] = Some((context, pairs.clone()));
                        pairs
                    }
                };
                changed |= pairs != sels[k];
                for &(sub, org) in &pairs {
                    *owned.entry((st.cand(sub), org)).or_default() += 1;
                }
                sels[k] = pairs;
            }
            if !changed {
                break;
            }
        }
        CompOut {
            sels,
            memos,
            sweeps,
            dp_runs,
            dp_memo_hits,
        }
    }

    /// Assembles a [`WorkloadPlan`] from per-path selections: query shares
    /// per path, each distinct physical index's maintenance **and
    /// footprint** exactly once. Epoch telemetry fields are zeroed; the
    /// caller fills them. Used by [`Self::reoptimize`] and by the budgeted
    /// selection, whose constrained selections price identically.
    fn assemble_plan(&self, selections: &[Selection], independent_cost: f64) -> WorkloadPlan {
        let mut owners: HashMap<(CandidateId, Org), Vec<usize>> = HashMap::new();
        let mut paths_out = Vec::with_capacity(self.paths.len());
        for (i, (st, sel)) in self.paths.iter().zip(selections).enumerate() {
            let n = st.path.len();
            let mut query_cost = 0.0;
            let mut pairs = Vec::with_capacity(sel.len());
            for &(sub, org) in sel {
                query_cost += st.query_costs[sub.rank(n)][org.index()];
                owners.entry((st.cand(sub), org)).or_default().push(i);
                pairs.push((sub, Choice::Index(org)));
            }
            paths_out.push(PathOutcome {
                id: st.id,
                path: st.path.clone(),
                selection: IndexConfiguration::new(pairs, n)
                    .expect("DP selections concatenate to the full path"),
                query_cost,
                standalone_cost: st.standalone.as_ref().expect("phase 2 filled it").1,
            });
        }
        let priced = |cand, org| {
            self.space
                .priced_maintenance(cand, org)
                .expect("selected pairs were priced in phase 1")
        };
        let sized = |cand, org| {
            self.space
                .priced_size(cand, org)
                .expect("selected pairs were sized in phase 1")
        };
        let mut shared: Vec<SharedIndexOutcome> = owners
            .iter()
            .filter(|(_, own)| own.len() >= 2)
            .map(|(&(cand, org), own)| {
                let maintenance = priced(cand, org);
                SharedIndexOutcome {
                    candidate: cand,
                    org,
                    owners: own.clone(),
                    maintenance,
                    saving: maintenance * (own.len() - 1) as f64,
                }
            })
            .collect();
        // Candidate ids depend on interning history (recycled slots), so a
        // warm advisor and its cold rebuild may disagree on them; order and
        // sum by history-independent keys to keep plans comparable.
        shared.sort_by(|a, b| {
            (&a.owners, a.org).cmp(&(&b.owners, b.org)).then_with(|| {
                self.space
                    .steps(a.candidate)
                    .cmp(self.space.steps(b.candidate))
            })
        });
        let mut maint_prices: Vec<f64> = owners.keys().map(|&(c, o)| priced(c, o)).collect();
        maint_prices.sort_by(f64::total_cmp);
        let maintenance_total: f64 = maint_prices.iter().sum();
        let mut size_prices: Vec<f64> = owners.keys().map(|&(c, o)| sized(c, o)).collect();
        size_prices.sort_by(f64::total_cmp);
        let size_pages: f64 = size_prices.iter().sum();
        let total_cost = paths_out.iter().map(|p| p.query_cost).sum::<f64>() + maintenance_total;
        WorkloadPlan {
            paths: paths_out,
            shared,
            independent_cost,
            total_cost,
            size_pages,
            physical_indexes: owners.len(),
            candidates: self.space.len(),
            maintenance_pricings: self.space.maintenance_pricings(),
            epoch_pricings: 0,
            sweeps: 0,
            epoch: self.epoch,
            mutations: 0,
            repriced_paths: 0,
            dp_runs: 0,
            dp_memo_hits: 0,
            components: 0,
            largest_component: 0,
            candidates_pruned: 0,
            speculation_skips: 0,
            candidates_mined_out: 0,
            cells_skipped: 0,
            lambda_pruned: 0,
        }
    }

    /// Rebuilds the cost model of path `i` and refreshes its cached query
    /// shares (when stale) and its candidates' maintenance memo cells
    /// (memoized: only invalidated or never-priced cells compute). This is
    /// [`Self::reprice_compute`] + an immediate merge — the sequential
    /// spelling of the buffered parallel phase, same values, same
    /// counters.
    fn reprice(&mut self, i: usize) {
        let out = Self::reprice_compute(
            self.schema,
            self.params,
            &self.stats,
            &self.maint,
            &self.space,
            self.sharding.then_some(&self.basis),
            &self.paths[i],
        );
        for (cand, org, m, s) in out.cells {
            self.space.maintenance_cost(cand, org, || m);
            self.space.size_cost(cand, org, || s);
        }
        let st = &mut self.paths[i];
        if let Some(q) = out.query_costs {
            st.query_costs = q;
        }
        st.dirty_query = false;
        st.dirty_maint = false;
    }

    /// The read-only half of re-pricing one dirty path: rebuild its cost
    /// model, recompute stale query shares, and price every candidate
    /// cell that is **unpriced in `space` right now** into a buffer. Runs
    /// on pool workers against a frozen `&CandidateSpace`; the caller
    /// merges buffers in path-id order, so a cell computed by several
    /// concurrent owners keeps the lowest-id owner's value — exactly the
    /// value the sequential first-owner walk installs.
    ///
    /// `basis` (sharded engine) short-circuits both planes: stale query
    /// shares replay from the path's per-signature [`QueryBasis`] —
    /// bitwise the from-scratch values — and the cost model is built
    /// lazily, only when some maintenance/size cell is actually unpriced.
    /// A signature the prepass left uncached (fewer than two dirty
    /// members) prices from scratch, as does the legacy engine (`None`),
    /// which rebuilds the model unconditionally.
    fn reprice_compute(
        schema: &Schema,
        params: CostParams,
        stats: &[ClassStats],
        maint: &[(f64, f64)],
        space: &CandidateSpace,
        basis: Option<&HashMap<PathSignature, QueryBasis>>,
        st: &PathState,
    ) -> RepriceOut {
        let n = st.path.len();
        // A path whose signature has a basis replays its query costs from
        // it; a query-clean path needs no query pricing at all. Either
        // way the cost model is only built for unpriced maintenance
        // cells. A query-dirty path with no basis (a signature the
        // prepass judged not worth caching — fewer than two dirty
        // members) prices from scratch below, exactly as the legacy
        // engine does.
        let hit = basis.and_then(|map| map.get(&st.signature));
        if basis.is_some() && (hit.is_some() || !st.dirty_query) {
            let query_costs = st.dirty_query.then(|| {
                hit.expect("query-dirty branch requires a basis hit")
                    .eval(&st.alphas, n, &st.cands)
            });
            let todo: Vec<(usize, CandidateId, Org)> = (0..SubpathId::count(n))
                .filter_map(|r| st.cands[r].map(|cand| (r, cand)))
                .flat_map(|(r, cand)| Org::ALL.map(move |org| (r, cand, org)))
                .filter(|&(_, cand, org)| {
                    space.priced_maintenance(cand, org).is_none()
                        || space.priced_size(cand, org).is_none()
                })
                .collect();
            let mut cells = Vec::with_capacity(todo.len());
            if !todo.is_empty() {
                let chars = PathCharacteristics::build(schema, &st.path, |c| stats[c.index()]);
                let model = CostModel::new(schema, &st.path, &chars, params);
                let mld = LoadDistribution::build(schema, &st.path, |c| {
                    let (beta, gamma) = maint[c.index()];
                    Triplet::new(0.0, beta, gamma)
                });
                for (r, cand, org) in todo {
                    let sub = SubpathId::from_rank(n, r);
                    cells.push((
                        cand,
                        org,
                        pc::processing_cost(&model, &mld, sub, Choice::Index(org)),
                        model.size_pages(org, sub),
                    ));
                }
            }
            return RepriceOut { query_costs, cells };
        }
        let chars = PathCharacteristics::build(schema, &st.path, |c| stats[c.index()]);
        let model = CostModel::new(schema, &st.path, &chars, params);
        let query_costs = st.dirty_query.then(|| {
            let alphas = &st.alphas;
            let qld = LoadDistribution::build(schema, &st.path, |c| {
                Triplet::new(alphas[c.index()], 0.0, 0.0)
            });
            (0..SubpathId::count(n))
                .map(|r| {
                    // Mined out: no cell to price.
                    if st.cands[r].is_none() {
                        return [0.0; 3];
                    }
                    let sub = SubpathId::from_rank(n, r);
                    let mut cell = [0.0; 3];
                    for org in Org::ALL {
                        cell[org.index()] =
                            pc::processing_cost(&model, &qld, sub, Choice::Index(org));
                    }
                    cell
                })
                .collect()
        });
        let mld = LoadDistribution::build(schema, &st.path, |c| {
            let (beta, gamma) = maint[c.index()];
            Triplet::new(0.0, beta, gamma)
        });
        let mut cells = Vec::new();
        for r in 0..SubpathId::count(n) {
            let Some(cand) = st.cands[r] else {
                continue; // mined out: no cells exist for this rank
            };
            let sub = SubpathId::from_rank(n, r);
            for org in Org::ALL {
                // The footprint rides the maintenance memo discipline
                // (priced once per (candidate, org), invalidated
                // together), so one staleness check covers both planes.
                if space.priced_maintenance(cand, org).is_some()
                    && space.priced_size(cand, org).is_some()
                {
                    continue;
                }
                cells.push((
                    cand,
                    org,
                    pc::processing_cost(&model, &mld, sub, Choice::Index(org)),
                    model.size_pages(org, sub),
                ));
            }
        }
        RepriceOut { query_costs, cells }
    }

    /// The 3-bit-per-rank mask of this path's `(candidate, org)` cells that
    /// some *other* path currently covers — the sharing context a best
    /// response depends on.
    fn context_key(st: &PathState, owned: &HashMap<(CandidateId, Org), usize>) -> Vec<u8> {
        st.cands
            .iter()
            .map(|&cand| {
                // A mined-out rank has no candidate anyone could cover.
                let Some(cand) = cand else { return 0 };
                let mut mask = 0u8;
                for org in Org::ALL {
                    if owned.get(&(cand, org)).is_some_and(|&c| c > 0) {
                        mask |= 1 << org.index();
                    }
                }
                mask
            })
            .collect()
    }

    /// The sharing context path `st` would see if every *other* path kept
    /// the selection recorded in the round-start snapshot: `counts` with
    /// the path's own round-start selection subtracted. This is what a
    /// parallel worker speculates against; the sequential commit loop
    /// adopts the speculation only when the live Gauss–Seidel context
    /// turns out equal.
    fn predicted_context(
        st: &PathState,
        counts: &HashMap<(CandidateId, Org), usize>,
        own: &Selection,
    ) -> Vec<u8> {
        let n = st.path.len();
        let mut own_contrib = vec![0u8; st.cands.len()];
        for &(sub, org) in own {
            own_contrib[sub.rank(n)] |= 1 << org.index();
        }
        st.cands
            .iter()
            .enumerate()
            .map(|(r, &cand)| {
                let Some(cand) = cand else { return 0 };
                let mut mask = 0u8;
                for org in Org::ALL {
                    let total = counts.get(&(cand, org)).copied().unwrap_or(0);
                    let own = usize::from(own_contrib[r] & (1 << org.index()) != 0);
                    if total.saturating_sub(own) > 0 {
                        mask |= 1 << org.index();
                    }
                }
                mask
            })
            .collect()
    }

    /// One parallel speculation round: every path's best response against
    /// its [`Self::predicted_context`], fanned out over the executor.
    /// `lambda = None` is the memo-aware unconstrained sweep (paths whose
    /// sweep memo already answers the predicted context return `None` —
    /// the commit loop will take the memo hit); `lambda = Some(λ)` is the
    /// memo-less λ-priced sweep of the budgeted search.
    fn speculate_round(
        &self,
        owned: &HashMap<(CandidateId, Org), usize>,
        selections: &[Selection],
        lambda: Option<f64>,
    ) -> SpeculationRound {
        let paths = &self.paths;
        let space = &self.space;
        let idxs: Vec<usize> = (0..paths.len()).collect();
        self.exec.par_map(&idxs, |_, &i| {
            let st = &paths[i];
            let pred = Self::predicted_context(st, owned, &selections[i]);
            match lambda {
                None => match &st.sweep_memo {
                    Some((key, _)) if *key == pred => None,
                    _ => {
                        let (pairs, _) =
                            Self::best_response(st, space, Some(&pred), st.pruned.as_deref());
                        Some((pred, pairs))
                    }
                },
                Some(l) => {
                    let m = Self::priced_matrix(st, space, Some(&pred), l, st.pruned.as_deref());
                    Some((pred, Self::matrix_selection(&m)))
                }
            }
        })
    }

    /// One path's optimal configuration under a sharing context: a covered
    /// candidate contributes its query share only (`None` = standalone, no
    /// sharing). All maintenance cells must already be priced. This is the
    /// λ = 0 case of the priced sweep — one implementation of the coverage
    /// rule serves the unconstrained and the budgeted machinery (`m +
    /// 0.0·s` is bit-identical to `m`, and the scalar DP never reads the
    /// size plane).
    ///
    /// `pruned` is the path's dominance mask
    /// ([`crate::select::prune_dominated`]): pruned cells become
    /// unselectable. The mask is **λ-uniform** — a struck cell is beaten
    /// in both cost and size, so it is absent from the optimum of `cost +
    /// λ·size` for every λ ≥ 0 — which lets the λ-priced sweeps, the
    /// eviction descent and the frontier machinery price under it too;
    /// the eviction path additionally re-validates the mask against its
    /// bans per rank (see `priced_matrix_inner`).
    fn best_response(
        st: &PathState,
        space: &CandidateSpace,
        context: Option<&[u8]>,
        pruned: Option<&[u8]>,
    ) -> (Vec<(SubpathId, Org)>, f64) {
        let matrix = Self::priced_matrix_inner(st, space, context, 0.0, None, pruned);
        let result = opt_ind_con_dp(&matrix);
        (Self::to_selection(&result.best), result.cost)
    }

    // ---- budgeted selection ----------------------------------------------

    /// One path's λ-priced cost matrix under a sharing context, with its
    /// size plane: an uncovered cell pays `query + maintenance + λ·size`, a
    /// covered cell pays its query share only — another path already
    /// maintains *and stores* that physical index, so both its maintenance
    /// and its footprint are counted once, by the first owner.
    fn priced_matrix(
        st: &PathState,
        space: &CandidateSpace,
        context: Option<&[u8]>,
        lambda: f64,
        pruned: Option<&[u8]>,
    ) -> CostMatrix {
        Self::priced_matrix_inner(st, space, context, lambda, None, pruned)
    }

    /// [`Self::priced_matrix`] with a set of banned physical indexes whose
    /// cells become unselectable (`INFINITY` cost) — the eviction descent's
    /// instrument.
    fn priced_matrix_banned(
        st: &PathState,
        space: &CandidateSpace,
        context: Option<&[u8]>,
        banned: &std::collections::HashSet<(CandidateId, Org)>,
        pruned: Option<&[u8]>,
    ) -> CostMatrix {
        Self::priced_matrix_inner(st, space, context, 0.0, Some(banned), pruned)
    }

    fn priced_matrix_inner(
        st: &PathState,
        space: &CandidateSpace,
        context: Option<&[u8]>,
        lambda: f64,
        banned: Option<&std::collections::HashSet<(CandidateId, Org)>>,
        pruned: Option<&[u8]>,
    ) -> CostMatrix {
        let n = st.path.len();
        // The dominance mask is λ-uniform — a struck cell is beaten in
        // both cost and size, so `cost + λ·size` loses for every λ ≥ 0
        // (DESIGN.md §5.15/§5.17) — but it is *not* ban-aware: a bound
        // whose dominating cells are banned proves nothing. Org-dominance
        // bits lean on cells of their own rank, so they apply only when
        // the rank is ban-free; the whole-rank (0b111) bound leans on
        // singleton replacements anywhere in the span, so it applies only
        // when the entire path is.
        let ban_in_rank = |r: usize| {
            banned.is_some_and(|b| {
                st.cands[r].is_some_and(|cand| Org::ALL.iter().any(|&o| b.contains(&(cand, o))))
            })
        };
        let ban_in_path = banned.is_some() && (0..SubpathId::count(n)).any(ban_in_rank);
        let values: Vec<(SubpathId, [f64; 3], [f64; 3])> = (0..SubpathId::count(n))
            .map(|r| {
                let sub = SubpathId::from_rank(n, r);
                // A mined-out rank is absent from the candidate space:
                // never priced, never selectable, no pages.
                let Some(cand) = st.cands[r] else {
                    return (sub, [f64::INFINITY; 3], [0.0; 3]);
                };
                let covered = context.map_or(0, |ctx| ctx[r]);
                let cut = match pruned.map_or(0, |p| p[r]) {
                    0b111 if ban_in_path => 0,
                    cut if cut != 0b111 && ban_in_rank(r) => 0,
                    cut => cut,
                };
                let mut cell = [0.0; 3];
                let mut sizes = [0.0; 3];
                for org in Org::ALL {
                    if banned.is_some_and(|b| b.contains(&(cand, org))) {
                        cell[org.index()] = f64::INFINITY;
                        sizes[org.index()] = 0.0;
                        continue;
                    }
                    // Coverage outranks the prune mask: a covered cell
                    // costs its query share only — which can beat the
                    // mask's uncovered-price dominance argument — so it
                    // stays selectable.
                    let (m, s) = if covered & (1 << org.index()) != 0 {
                        (0.0, 0.0)
                    } else if cut & (1 << org.index()) != 0 {
                        (f64::INFINITY, 0.0)
                    } else {
                        (
                            space
                                .priced_maintenance(cand, org)
                                .expect("maintenance priced during reprice"),
                            space
                                .priced_size(cand, org)
                                .expect("size priced during reprice"),
                        )
                    };
                    cell[org.index()] = st.query_costs[r][org.index()] + m + lambda * s;
                    sizes[org.index()] = s;
                }
                (sub, cell, sizes)
            })
            .collect();
        CostMatrix::from_values_with_sizes(n, &values)
    }

    /// One full coordinate-descent pass pricing `cost + λ·size` — the
    /// unconstrained sweep in a Lagrangian-relaxed objective. Read-only:
    /// neither the sweep memos nor the standalone caches are touched (they
    /// hold λ = 0 artifacts). Parallel executors fan the context-free
    /// seeding and each round's speculation out exactly like the
    /// unconstrained sweeps; the sequential commit keeps the trajectory
    /// bit-identical.
    fn lambda_sweep(&self, lambda: f64) -> Vec<Selection> {
        let seed = |_: usize, st: &PathState| {
            let m = Self::priced_matrix(st, &self.space, None, lambda, st.pruned.as_deref());
            Self::matrix_selection(&m)
        };
        let mut selections: Vec<Selection> = if self.exec.is_parallel() && self.paths.len() > 1 {
            self.exec.par_map(&self.paths, seed)
        } else {
            self.paths
                .iter()
                .enumerate()
                .map(|(i, st)| seed(i, st))
                .collect()
        };
        let mut owned: HashMap<(CandidateId, Org), usize> = HashMap::new();
        for (st, sel) in self.paths.iter().zip(&selections) {
            for &(sub, org) in sel {
                *owned.entry((st.cand(sub), org)).or_default() += 1;
            }
        }
        for _ in 0..MAX_SWEEPS {
            let specs: Option<SpeculationRound> = if self.exec.is_parallel() && self.paths.len() > 1
            {
                Some(self.speculate_round(&owned, &selections, Some(lambda)))
            } else {
                None
            };
            let mut changed = false;
            for (i, sel) in selections.iter_mut().enumerate() {
                let st = &self.paths[i];
                for &(sub, org) in sel.iter() {
                    let key = (st.cand(sub), org);
                    let count = owned.get_mut(&key).expect("selection was registered");
                    *count -= 1;
                    if *count == 0 {
                        owned.remove(&key);
                    }
                }
                let context = Self::context_key(st, &owned);
                let pairs = match specs.as_ref().and_then(|s| s[i].as_ref()) {
                    Some((pred, pairs)) if *pred == context => pairs.clone(),
                    _ => {
                        let m = Self::priced_matrix(
                            st,
                            &self.space,
                            Some(&context),
                            lambda,
                            st.pruned.as_deref(),
                        );
                        Self::matrix_selection(&m)
                    }
                };
                changed |= pairs != *sel;
                for &(sub, org) in &pairs {
                    *owned.entry((st.cand(sub), org)).or_default() += 1;
                }
                *sel = pairs;
            }
            if !changed {
                break;
            }
        }
        selections
    }

    /// The scalar optimum of a priced matrix as a `(subpath, org)` list.
    fn matrix_selection(matrix: &CostMatrix) -> Selection {
        Self::to_selection(&opt_ind_con_dp(matrix).best)
    }

    /// Converts a configuration into a workload [`Selection`] (workload
    /// matrices never build the no-index column).
    fn to_selection(config: &IndexConfiguration) -> Selection {
        config
            .pairs()
            .iter()
            .map(|&(sub, choice)| match choice {
                Choice::Index(org) => (sub, org),
                Choice::NoIndex => unreachable!("no no-index column at workload scale"),
            })
            .collect()
    }

    /// The true `(cost, size)` of per-path selections: query shares plus
    /// each distinct physical `(candidate, org)`'s maintenance and
    /// footprint once. Sums run over value-sorted vectors so the totals are
    /// independent of hash-map iteration order.
    fn selection_totals(&self, selections: &[Selection]) -> (f64, f64) {
        let mut distinct: std::collections::HashSet<(CandidateId, Org)> =
            std::collections::HashSet::new();
        let mut query = 0.0;
        for (st, sel) in self.paths.iter().zip(selections) {
            let n = st.path.len();
            for &(sub, org) in sel {
                query += st.query_costs[sub.rank(n)][org.index()];
                distinct.insert((st.cand(sub), org));
            }
        }
        let mut maint: Vec<f64> = distinct
            .iter()
            .map(|&(c, o)| self.space.priced_maintenance(c, o).expect("priced"))
            .collect();
        maint.sort_by(f64::total_cmp);
        let mut sizes: Vec<f64> = distinct
            .iter()
            .map(|&(c, o)| self.space.priced_size(c, o).expect("sized"))
            .collect();
        sizes.sort_by(f64::total_cmp);
        (query + maint.iter().sum::<f64>(), sizes.iter().sum::<f64>())
    }

    /// The marginal `(cost, size)` of one path's *existing* selection
    /// under a sharing context, read from the installed prices and never
    /// through the dominance mask — bit-identical to summing the matching
    /// unmasked matrix cells (the arithmetic mirrors
    /// [`Self::priced_matrix_inner`] at λ = 0, in selection order).
    fn true_marginal(
        st: &PathState,
        space: &CandidateSpace,
        context: &[u8],
        sel: &Selection,
    ) -> (f64, f64) {
        let n = st.path.len();
        let mut cost = 0.0;
        let mut size = 0.0;
        for &(sub, org) in sel.iter() {
            let r = sub.rank(n);
            let (m, s) = if context[r] & (1 << org.index()) != 0 {
                (0.0, 0.0)
            } else {
                (
                    space
                        .priced_maintenance(st.cand(sub), org)
                        .expect("maintenance priced during reprice"),
                    space
                        .priced_size(st.cand(sub), org)
                        .expect("size priced during reprice"),
                )
            };
            cost += st.query_costs[r][org.index()] + m + 0.0 * s;
            size += s;
        }
        (cost, size)
    }

    /// Frontier-based greedy repair: round-robin over the paths, replacing
    /// each path's selection by the cheapest point of its *marginal*
    /// `(cost, size)` frontier that fits the budget slack the other paths
    /// leave. Marginal means count-once-aware: cells other paths cover cost
    /// no maintenance and no pages. Each adoption strictly lowers the total
    /// cost while preserving feasibility, so the pass closes (part of) the
    /// duality gap the λ discretization leaves open. Returns the number of
    /// adoptions.
    fn repair(&self, selections: &mut [Selection], budget_pages: f64) -> usize {
        let mut owned: HashMap<(CandidateId, Org), usize> = HashMap::new();
        for (st, sel) in self.paths.iter().zip(selections.iter()) {
            for &(sub, org) in sel {
                *owned.entry((st.cand(sub), org)).or_default() += 1;
            }
        }
        let mut repairs = 0;
        for _ in 0..MAX_SWEEPS {
            let mut changed = false;
            for (st, sel) in self.paths.iter().zip(selections.iter_mut()) {
                for &(sub, org) in sel.iter() {
                    let key = (st.cand(sub), org);
                    let count = owned.get_mut(&key).expect("selection was registered");
                    *count -= 1;
                    if *count == 0 {
                        owned.remove(&key);
                    }
                }
                let mut other_sizes: Vec<f64> = owned
                    .keys()
                    .map(|&(c, o)| self.space.priced_size(c, o).expect("sized"))
                    .collect();
                other_sizes.sort_by(f64::total_cmp);
                let slack = budget_pages - other_sizes.iter().sum::<f64>();
                let context = Self::context_key(st, &owned);
                let matrix =
                    Self::priced_matrix(st, &self.space, Some(&context), 0.0, st.pruned.as_deref());
                // Marginal (cost, size) of the current selection, for the
                // strict-improvement guard — priced mask-blind: the mask
                // certifies a struck cell belongs to no *optimum*, not
                // that the current selection avoids one (a cell adopted
                // while covered can be struck once its sharer moved away),
                // and an ∞ old price would turn the guard into an
                // unconditional adoption.
                let (old_cost, old_size) = Self::true_marginal(st, &self.space, &context, sel);
                let frontier = crate::select::frontier_dp(&matrix);
                if let Some(point) = frontier.within_budget(slack) {
                    let tol = 1e-9 * old_cost.abs().max(1.0);
                    let stol = 1e-9 * old_size.abs().max(1.0);
                    // Lexicographic improvement: strictly cheaper, or
                    // equally cheap and strictly leaner (frees slack for
                    // later paths without giving anything up). Strictness
                    // guarantees termination.
                    if point.cost < old_cost - tol
                        || (point.cost <= old_cost + tol && point.size < old_size - stol)
                    {
                        *sel = Self::to_selection(&point.config);
                        repairs += 1;
                        changed = true;
                    }
                }
                for &(sub, org) in sel.iter() {
                    *owned.entry((st.cand(sub), org)).or_default() += 1;
                }
            }
            if !changed {
                break;
            }
        }
        repairs
    }

    /// Greedy eviction descent: starting from (a copy of) the
    /// unconstrained selections, repeatedly **ban the physical index**
    /// whose eviction costs the least per page it frees — all of its owner
    /// paths re-select without it, under the live sharing context — until
    /// the budget fits or no eviction reduces the footprint. Returns
    /// whether the budget was reached.
    ///
    /// This is the complement of the λ sweep, and it works at the
    /// *candidate* level deliberately: shared candidates couple the paths
    /// (a fat shared index has marginal size zero for every owner but the
    /// last, so no single-path move can free its pages, while in a λ sweep
    /// the first owner leaving strips the others' free ride and the whole
    /// clique stampedes to lean plans far past the budget). Banning the
    /// physical index and re-selecting all its owners at once prices the
    /// coordinated move exactly.
    fn evict_to_budget(&self, selections: &mut Vec<Selection>, budget_pages: f64) -> bool {
        use std::collections::HashSet;
        let mut banned: HashSet<(CandidateId, Org)> = HashSet::new();
        loop {
            let (cost0, size0) = self.selection_totals(selections);
            if size0 <= budget_pages {
                return true;
            }
            let mut owners_map: HashMap<(CandidateId, Org), Vec<usize>> = HashMap::new();
            for (i, (st, sel)) in self.paths.iter().zip(selections.iter()).enumerate() {
                for &(sub, org) in sel {
                    owners_map.entry((st.cand(sub), org)).or_default().push(i);
                }
            }
            // Deterministic candidate order (hash maps iterate randomly).
            let mut pairs: Vec<(CandidateId, Org)> = owners_map.keys().copied().collect();
            pairs.sort_unstable();
            // Each trial is read-only given the current selections, so the
            // fan-out is free of coordination; the fold below walks the
            // sorted pair order, which keeps the chosen eviction — and the
            // whole descent — bit-identical to the sequential engine.
            let trial_of = |_: usize, pair: &(CandidateId, Org)| {
                self.eviction_trial(selections, &owners_map, &banned, *pair)
            };
            let trials: Vec<Option<(Vec<Selection>, f64, f64)>> =
                if self.exec.is_parallel() && pairs.len() > 1 {
                    self.exec.par_map(&pairs, trial_of)
                } else {
                    pairs
                        .iter()
                        .enumerate()
                        .map(|(k, pair)| trial_of(k, pair))
                        .collect()
                };
            let stol = 1e-9 * size0.abs().max(1.0);
            let mut best: Option<EvictionTrial> = None;
            for (&pair, outcome) in pairs.iter().zip(trials) {
                let Some((trial, cost, size)) = outcome else {
                    continue; // the ban left some owner uncoverable
                };
                if size >= size0 - stol {
                    continue; // evicting this index frees nothing
                }
                let regret = (cost - cost0) / (size0 - size);
                let better = best
                    .as_ref()
                    .map_or(true, |b| regret < b.0 || (regret == b.0 && size < b.4));
                if better {
                    best = Some((regret, pair, trial, cost, size));
                }
            }
            let Some((_, pair, trial, _, _)) = best else {
                return false; // nothing left to evict: budget unreachable
            };
            // The evicted index stays banned for the rest of the descent so
            // a later owner's re-selection cannot smuggle it back.
            banned.insert(pair);
            *selections = trial;
        }
    }

    /// One eviction trial: ban `pair` on top of `banned_base` and let all
    /// of its owner paths re-select without it under the live sharing
    /// context. Returns the re-selected workload with its true `(cost,
    /// size)`, or `None` when the ban leaves some owner uncoverable.
    /// Read-only (runs on pool workers during the parallel descent).
    fn eviction_trial(
        &self,
        selections: &[Selection],
        owners_map: &HashMap<(CandidateId, Org), Vec<usize>>,
        banned_base: &std::collections::HashSet<(CandidateId, Org)>,
        pair: (CandidateId, Org),
    ) -> Option<(Vec<Selection>, f64, f64)> {
        let mut banned = banned_base.clone();
        banned.insert(pair);
        let mut trial = selections.to_vec();
        let mut owned: HashMap<(CandidateId, Org), usize> = HashMap::new();
        for (st, sel) in self.paths.iter().zip(trial.iter()) {
            for &(sub, org) in sel {
                *owned.entry((st.cand(sub), org)).or_default() += 1;
            }
        }
        for &i in &owners_map[&pair] {
            let st = &self.paths[i];
            for &(sub, org) in &trial[i] {
                let key = (st.cand(sub), org);
                let count = owned.get_mut(&key).expect("selection was registered");
                *count -= 1;
                if *count == 0 {
                    owned.remove(&key);
                }
            }
            let context = Self::context_key(st, &owned);
            let matrix = Self::priced_matrix_banned(
                st,
                &self.space,
                Some(&context),
                &banned,
                st.pruned.as_deref(),
            );
            // frontier_dp rather than the scalar DP, deliberately:
            // its empty point set detects a ban that left the path
            // uncoverable (the scalar DP panics there), and its
            // first point breaks exact cost ties toward the leaner
            // configuration — the right bias while evicting pages.
            let frontier = crate::select::frontier_dp(&matrix);
            let point = frontier.points.first()?;
            trial[i] = Self::to_selection(&point.config);
            for &(sub, org) in &trial[i] {
                *owned.entry((st.cand(sub), org)).or_default() += 1;
            }
        }
        let (cost, size) = self.selection_totals(&trial);
        Some((trial, cost, size))
    }

    /// Workload-scale selection under a **shared page budget**: the
    /// cheapest plan whose total physical footprint — each distinct
    /// `(candidate, organization)` counted once, like its maintenance —
    /// fits `budget_pages`.
    ///
    /// Strategy (DESIGN.md §5.12):
    ///
    /// 1. Run the unconstrained [`Self::reoptimize`]. If its footprint
    ///    already fits (always true at `budget_pages = ∞`), return it
    ///    unchanged — the budgeted API is behavior-preserving at infinite
    ///    budget by construction.
    /// 2. Otherwise relax the budget into the objective: bisect the
    ///    Lagrange multiplier λ of `cost + λ·size`, each probe being a full
    ///    λ-priced coordinate-descent sweep over the shared candidate space
    ///    (the λ-priced sweep is just another pricing context; covered
    ///    cells stay free in both cost and pages). In parallel, run a
    ///    greedy *eviction descent* from the
    ///    unconstrained selections — cheapest regret per page saved first —
    ///    which covers the budgets the sweep's discontinuous footprint
    ///    curve jumps over.
    /// 3. Close the duality gap with a frontier-based greedy
    ///    *repair* pass from the cheapest feasible plan
    ///    found.
    ///
    /// When even the most size-averse sweep cannot fit (a budget below the
    /// workload's minimum footprint), the returned plan is that leanest
    /// plan and `feasible` is `false`.
    ///
    /// The unconstrained `optimize()` is itself a coordinate-descent
    /// heuristic, and the budget search explores strictly harder
    /// (candidate-level evictions plus per-path frontier repairs), so a
    /// *nearly*-slack budget can occasionally return a plan slightly
    /// **cheaper** than the unconstrained one — a bonus, reported as a
    /// [`BudgetedWorkloadPlan::cost_ratio`] just under 1.
    pub fn optimize_with_budget(&mut self, budget_pages: f64) -> BudgetedWorkloadPlan {
        assert!(!budget_pages.is_nan(), "budget must be a page count or ∞");
        let unconstrained = self.reoptimize();
        let unconstrained_cost = unconstrained.total_cost;
        let unconstrained_size = unconstrained.size_pages;
        if unconstrained.size_pages <= budget_pages || self.paths.is_empty() {
            return BudgetedWorkloadPlan {
                plan: unconstrained,
                budget_pages,
                feasible: true,
                lambda: 0.0,
                lambda_sweeps: 0,
                repairs: 0,
                unconstrained_cost,
                unconstrained_size,
            };
        }

        // Bracket λ: grow until the sweep fits the budget.
        let mut lambda_sweeps = 0usize;
        let mut lo = 0.0f64;
        let mut hi = (unconstrained_cost / unconstrained_size.max(1e-12)).max(1e-9);
        // Best feasible (cost-minimal) and leanest (size-minimal) probes;
        // each records the λ that produced it (0 = not from a λ sweep).
        let mut best: Option<(Vec<Selection>, f64, f64, f64)> = None;
        let mut leanest: Option<(Vec<Selection>, f64, f64, f64)> = None;
        let probe = |advisor: &Self,
                     l: f64,
                     best: &mut Option<(Vec<Selection>, f64, f64, f64)>,
                     leanest: &mut Option<(Vec<Selection>, f64, f64, f64)>|
         -> (f64, f64) {
            let sel = advisor.lambda_sweep(l);
            let (cost, size) = advisor.selection_totals(&sel);
            if size <= budget_pages && best.as_ref().map_or(true, |b| cost < b.1) {
                *best = Some((sel.clone(), cost, size, l));
            }
            if leanest
                .as_ref()
                .map_or(true, |b| size < b.2 || (size == b.2 && cost < b.1))
            {
                *leanest = Some((sel, cost, size, l));
            }
            (cost, size)
        };
        let mut plateau = 0u32;
        let mut prev_size = f64::NAN;
        for _ in 0..48 {
            lambda_sweeps += 1;
            let (_, size) = probe(self, hi, &mut best, &mut leanest);
            if size <= budget_pages {
                break;
            }
            // A footprint that stopped shrinking across several
            // quadruplings of λ has saturated at the workload's minimum:
            // the budget is infeasible, stop escalating.
            if size == prev_size {
                plateau += 1;
                if plateau >= 3 {
                    break;
                }
            } else {
                plateau = 0;
                prev_size = size;
            }
            lo = hi;
            hi *= 4.0;
        }
        if best.is_some() {
            // Bisect toward the smallest λ whose sweep still fits — smaller
            // λ weighs cost more, so it can only find cheaper feasible
            // plans.
            for _ in 0..24 {
                let mid = 0.5 * (lo + hi);
                lambda_sweeps += 1;
                let (_, size) = probe(self, mid, &mut best, &mut leanest);
                if size <= budget_pages {
                    hi = mid;
                } else {
                    lo = mid;
                }
            }
        }
        // Second search direction: greedy eviction descent from the
        // unconstrained selections. The λ sweep can overshoot (shared
        // candidates couple the paths, so its footprint jumps
        // discontinuously in λ); the descent walks down one cheapest-regret
        // move at a time and lands just under the budget.
        let mut evicted: Vec<Selection> = unconstrained
            .paths
            .iter()
            .map(|p| Self::to_selection(&p.selection))
            .collect();
        if self.evict_to_budget(&mut evicted, budget_pages) {
            let (cost, size) = self.selection_totals(&evicted);
            if best.as_ref().map_or(true, |b| cost < b.1) {
                best = Some((evicted, cost, size, 0.0));
            }
        } else {
            let (cost, size) = self.selection_totals(&evicted);
            if leanest
                .as_ref()
                .map_or(true, |b| size < b.2 || (size == b.2 && cost < b.1))
            {
                leanest = Some((evicted, cost, size, 0.0));
            }
        }
        let (mut selections, feasible, lambda) = match best {
            Some((sel, _, _, l)) => (sel, true, l),
            None => {
                // Even the leanest search result exceeds the budget: report
                // that plan, flagged infeasible, under the λ that found it
                // (0 when the eviction descent produced it).
                let lean = leanest.expect("at least one probe ran");
                (lean.0, false, lean.3)
            }
        };
        let repairs = if feasible {
            self.repair(&mut selections, budget_pages)
        } else {
            0
        };
        let independent_cost: f64 = self
            .paths
            .iter()
            .map(|st| st.standalone.as_ref().expect("reoptimize filled it").1)
            .sum();
        let mut plan = self.assemble_plan(&selections, independent_cost);
        // The real epoch work happened inside the inner reoptimize(): carry
        // its telemetry over instead of reporting the budgeted epoch as
        // free (the λ sweeps and evictions are read-only w.r.t. the memos
        // and are reported separately via lambda_sweeps / repairs).
        plan.epoch_pricings = unconstrained.epoch_pricings;
        plan.sweeps = unconstrained.sweeps;
        plan.mutations = unconstrained.mutations;
        plan.repriced_paths = unconstrained.repriced_paths;
        plan.dp_runs = unconstrained.dp_runs;
        plan.dp_memo_hits = unconstrained.dp_memo_hits;
        plan.components = unconstrained.components;
        plan.largest_component = unconstrained.largest_component;
        plan.candidates_pruned = unconstrained.candidates_pruned;
        plan.speculation_skips = unconstrained.speculation_skips;
        plan.candidates_mined_out = unconstrained.candidates_mined_out;
        plan.cells_skipped = unconstrained.cells_skipped;
        // λ sweeps ran against the live masks: report the cells the
        // budgeted search priced without (the λ-uniform dominance bound).
        plan.lambda_pruned = if lambda_sweeps > 0 {
            self.paths
                .iter()
                .map(|st| {
                    st.pruned
                        .as_deref()
                        .map_or(0, |m| m.iter().map(|b| u64::from(b.count_ones())).sum())
                })
                .sum()
        } else {
            0
        };
        debug_assert!(
            !feasible || plan.size_pages <= budget_pages * (1.0 + 1e-12) + 1e-9,
            "feasible plan exceeds budget: {} > {budget_pages}",
            plan.size_pages
        );
        BudgetedWorkloadPlan {
            plan,
            budget_pages,
            feasible,
            lambda,
            lambda_sweeps,
            repairs,
            unconstrained_cost,
            unconstrained_size,
        }
    }

    // ---- what-if & cross-plan pricing -------------------------------------

    /// Prices the hypothetical physical index over `sub` of `path` without
    /// adopting it — AIM's core what-if primitive, nearly free here
    /// because the advisor already prices candidates standalone.
    ///
    /// Resolution: the candidate identity is `path`'s step sequence over
    /// `sub` in its role (embedded iff `sub` ends before the path does).
    /// If that identity is live in the shared space **and** fully priced,
    /// the report reads the adopted memos — maintenance, footprint and
    /// every clean subscriber's query share reproduce the adopted pricing
    /// bitwise. Otherwise the candidate is priced standalone under the
    /// current statistics and rates, exactly the arithmetic the re-pricing
    /// phase runs when a path exposes a new candidate (so probing first
    /// and adopting later yields the same numbers).
    ///
    /// Values reflect the last completed `(re)optimize`; pending mutations
    /// are visible only through the standalone arm. `path` need not be
    /// registered with the advisor.
    pub fn what_if(&self, path: &Path, sub: SubpathId) -> WhatIfReport {
        let n = path.len();
        assert!(
            sub.start >= 1 && sub.start <= sub.end && sub.end <= n,
            "subpath {sub:?} out of range for a path of {n} positions"
        );
        let steps = path.step_keys(sub);
        let embedded = sub.end < n;
        let candidate = self.space.find(&steps, embedded);
        if let Some(id) = candidate {
            let memo = (|| {
                let mut m = [0.0; 3];
                let mut s = [0.0; 3];
                for org in Org::ALL {
                    m[org.index()] = self.space.priced_maintenance(id, org)?;
                    s[org.index()] = self.space.priced_size(id, org)?;
                }
                Some((m, s))
            })();
            if let Some((maintenance, size_pages)) = memo {
                let mut subscribers = Vec::new();
                for st in &self.paths {
                    if st.dirty_query {
                        continue; // stale shares never enter a report
                    }
                    for (r, &cand) in st.cands.iter().enumerate() {
                        if cand == Some(id) {
                            subscribers.push(WhatIfSubscriber {
                                path: st.id,
                                sub: SubpathId::from_rank(st.path.len(), r),
                                query_costs: st.query_costs[r],
                            });
                        }
                    }
                }
                return WhatIfReport {
                    steps,
                    embedded,
                    candidate,
                    adopted: true,
                    maintenance,
                    size_pages,
                    subscribers,
                };
            }
        }
        // Hypothetical (or invalidated) candidate: one standalone pricing
        // pass, installing nothing.
        let chars = PathCharacteristics::build(self.schema, path, |c| self.stats[c.index()]);
        let model = CostModel::new(self.schema, path, &chars, self.params);
        let mld = LoadDistribution::build(self.schema, path, |c| {
            let (beta, gamma) = self.maint[c.index()];
            Triplet::new(0.0, beta, gamma)
        });
        let mut maintenance = [0.0; 3];
        let mut size_pages = [0.0; 3];
        for org in Org::ALL {
            maintenance[org.index()] = pc::processing_cost(&model, &mld, sub, Choice::Index(org));
            size_pages[org.index()] = model.size_pages(org, sub);
        }
        WhatIfReport {
            steps,
            embedded,
            candidate,
            adopted: false,
            maintenance,
            size_pages,
            subscribers: Vec::new(),
        }
    }

    /// The workload objective of **another advisor's plan** priced under
    /// *this* advisor's adopted statistics and rates: per-path query
    /// shares of the plan's selections plus each distinct physical index's
    /// maintenance, once. This is the yardstick of the online-tuning
    /// bench: the true cost of the estimator-driven plan is what the
    /// oracle (exact-rate) advisor says it costs.
    ///
    /// Requires a completed `(re)optimize` on `self` (so every cell is
    /// priced) and the same live path set (matched by [`PathId`], which
    /// congruent mutation histories keep aligned).
    pub fn price_plan(&self, plan: &WorkloadPlan) -> f64 {
        assert_eq!(
            plan.paths.len(),
            self.paths.len(),
            "price_plan: plan and advisor hold different path sets"
        );
        let by_id: HashMap<PathId, &PathOutcome> = plan.paths.iter().map(|p| (p.id, p)).collect();
        let selections: Vec<Selection> = self
            .paths
            .iter()
            .map(|st| {
                let p = by_id
                    .get(&st.id)
                    .unwrap_or_else(|| panic!("price_plan: plan misses live path {:?}", st.id));
                assert_eq!(
                    p.path.signature(),
                    st.signature,
                    "price_plan: path {:?} changed identity",
                    st.id
                );
                Self::to_selection(&p.selection)
            })
            .collect();
        self.selection_totals(&selections).0
    }

    /// An upper bound on the workload-cost increase the mined admission
    /// can cause, from the coverability guarantee (DESIGN.md §5.17): any
    /// position a mined-out rank spans is still coverable by its admitted
    /// singleton rank, so an unmined solution turns mined-feasible by
    /// replacing each dropped piece with those singletons — at an extra
    /// cost of at most the summed full price (query share plus unshared
    /// maintenance, cheapest organization) of the replacement singletons.
    /// The bound sums that replacement price over the union of every
    /// mined-out rank's span, per path — generous, since real selections
    /// drop far fewer pieces. 0 when nothing was mined out. Requires a
    /// completed `(re)optimize` (every live cell priced).
    pub fn mining_cost_bound(&self) -> f64 {
        let mut bound = 0.0;
        for st in &self.paths {
            let n = st.path.len();
            let mut dropped_span = vec![false; n + 1];
            for (r, c) in st.cands.iter().enumerate() {
                if c.is_none() {
                    let sub = SubpathId::from_rank(n, r);
                    dropped_span[sub.start..=sub.end].fill(true);
                }
            }
            for (l, &dropped) in dropped_span.iter().enumerate().skip(1) {
                if !dropped {
                    continue;
                }
                let r = SubpathId { start: l, end: l }.rank(n);
                let cand = st.cands[r].expect("singleton ranks are always admitted");
                let cheapest = Org::ALL
                    .iter()
                    .map(|&org| {
                        st.query_costs[r][org.index()]
                            + self
                                .space
                                .priced_maintenance(cand, org)
                                .expect("priced after (re)optimize")
                    })
                    .fold(f64::INFINITY, f64::min);
                bound += cheapest;
            }
        }
        bound
    }
}

impl WorkloadPlan {
    /// Asserts this plan **bit-identical** to `other` — the canonical
    /// spelling of the parallel determinism contract (DESIGN.md §5.13),
    /// used by the cross-thread-count property tests, the scaling bench
    /// and the parallel example so their coverage cannot drift apart.
    /// Floats compare via `to_bits`; selections, shared-index outcomes
    /// and the work-audit telemetry (sweeps, pricings, DP runs, memo
    /// hits) must all match. Panics with `ctx` on the first divergence.
    ///
    /// Only [`WorkloadPlan::epoch`] and [`WorkloadPlan::mutations`] are
    /// exempt: they describe the advisor's history, not the plan, so
    /// e.g. a warm plan may be compared against its cold rebuild.
    pub fn assert_bit_identical_to(&self, other: &WorkloadPlan, ctx: &str) {
        assert_eq!(
            self.total_cost.to_bits(),
            other.total_cost.to_bits(),
            "{ctx}: total_cost {} vs {}",
            self.total_cost,
            other.total_cost
        );
        assert_eq!(
            self.independent_cost.to_bits(),
            other.independent_cost.to_bits(),
            "{ctx}: independent_cost"
        );
        assert_eq!(
            self.size_pages.to_bits(),
            other.size_pages.to_bits(),
            "{ctx}: size_pages"
        );
        assert_eq!(self.physical_indexes, other.physical_indexes, "{ctx}");
        assert_eq!(self.candidates, other.candidates, "{ctx}");
        assert_eq!(self.sweeps, other.sweeps, "{ctx}: sweeps");
        assert_eq!(
            self.repriced_paths, other.repriced_paths,
            "{ctx}: repriced paths"
        );
        assert_eq!(
            self.epoch_pricings, other.epoch_pricings,
            "{ctx}: epoch pricings"
        );
        assert_eq!(
            self.maintenance_pricings, other.maintenance_pricings,
            "{ctx}: cumulative pricings"
        );
        assert_eq!(self.dp_runs, other.dp_runs, "{ctx}: dp runs");
        assert_eq!(self.dp_memo_hits, other.dp_memo_hits, "{ctx}: dp memo hits");
        assert_eq!(self.components, other.components, "{ctx}: components");
        assert_eq!(
            self.largest_component, other.largest_component,
            "{ctx}: largest component"
        );
        assert_eq!(
            self.candidates_pruned, other.candidates_pruned,
            "{ctx}: candidates pruned"
        );
        assert_eq!(
            self.speculation_skips, other.speculation_skips,
            "{ctx}: speculation skips"
        );
        assert_eq!(
            self.candidates_mined_out, other.candidates_mined_out,
            "{ctx}: candidates mined out"
        );
        assert_eq!(
            self.cells_skipped, other.cells_skipped,
            "{ctx}: cells skipped"
        );
        assert_eq!(
            self.lambda_pruned, other.lambda_pruned,
            "{ctx}: λ-pruned cells"
        );
        assert_eq!(self.paths.len(), other.paths.len(), "{ctx}: path count");
        for (a, b) in self.paths.iter().zip(&other.paths) {
            assert_eq!(a.id, b.id, "{ctx}");
            assert_eq!(
                a.selection.pairs(),
                b.selection.pairs(),
                "{ctx}: selections diverged for path {:?}",
                a.id
            );
            assert_eq!(a.query_cost.to_bits(), b.query_cost.to_bits(), "{ctx}");
            assert_eq!(
                a.standalone_cost.to_bits(),
                b.standalone_cost.to_bits(),
                "{ctx}"
            );
        }
        assert_eq!(self.shared.len(), other.shared.len(), "{ctx}: shared count");
        for (a, b) in self.shared.iter().zip(&other.shared) {
            assert_eq!(a.candidate, b.candidate, "{ctx}");
            assert_eq!(a.org, b.org, "{ctx}");
            assert_eq!(a.owners, b.owners, "{ctx}");
            assert_eq!(a.maintenance.to_bits(), b.maintenance.to_bits(), "{ctx}");
            assert_eq!(a.saving.to_bits(), b.saving.to_bits(), "{ctx}");
        }
    }

    /// Asserts this plan selects the **same physical design** as `other`,
    /// ignoring the work-audit counters — the cross-*engine* contract of
    /// DESIGN.md §5.15: the sharded engine (component descent + dominance
    /// pruning + query bases) and the legacy global engine produce the
    /// same selections, costs (bitwise), footprint, shared-index outcomes
    /// and shape telemetry, but legitimately differ in how much work they
    /// did to get there (sweeps, DP runs, memo hits, pricings, pruning
    /// counters). Panics with `ctx` on the first divergence.
    pub fn assert_same_plan(&self, other: &WorkloadPlan, ctx: &str) {
        assert_eq!(
            self.total_cost.to_bits(),
            other.total_cost.to_bits(),
            "{ctx}: total_cost {} vs {}",
            self.total_cost,
            other.total_cost
        );
        assert_eq!(
            self.independent_cost.to_bits(),
            other.independent_cost.to_bits(),
            "{ctx}: independent_cost"
        );
        assert_eq!(
            self.size_pages.to_bits(),
            other.size_pages.to_bits(),
            "{ctx}: size_pages"
        );
        assert_eq!(self.physical_indexes, other.physical_indexes, "{ctx}");
        assert_eq!(self.candidates, other.candidates, "{ctx}");
        assert_eq!(self.components, other.components, "{ctx}: components");
        assert_eq!(
            self.largest_component, other.largest_component,
            "{ctx}: largest component"
        );
        assert_eq!(self.paths.len(), other.paths.len(), "{ctx}: path count");
        for (a, b) in self.paths.iter().zip(&other.paths) {
            assert_eq!(a.id, b.id, "{ctx}");
            assert_eq!(
                a.selection.pairs(),
                b.selection.pairs(),
                "{ctx}: selections diverged for path {:?}",
                a.id
            );
            assert_eq!(a.query_cost.to_bits(), b.query_cost.to_bits(), "{ctx}");
            assert_eq!(
                a.standalone_cost.to_bits(),
                b.standalone_cost.to_bits(),
                "{ctx}"
            );
        }
        assert_eq!(self.shared.len(), other.shared.len(), "{ctx}: shared count");
        for (a, b) in self.shared.iter().zip(&other.shared) {
            assert_eq!(a.candidate, b.candidate, "{ctx}");
            assert_eq!(a.org, b.org, "{ctx}");
            assert_eq!(a.owners, b.owners, "{ctx}");
            assert_eq!(a.maintenance.to_bits(), b.maintenance.to_bits(), "{ctx}");
            assert_eq!(a.saving.to_bits(), b.saving.to_bits(), "{ctx}");
        }
    }

    /// Human-readable report.
    pub fn render(&self, schema: &Schema) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "workload plan (epoch {}): {} paths, {} physical indexes over {} candidates",
            self.epoch,
            self.paths.len(),
            self.physical_indexes,
            self.candidates
        );
        for (i, p) in self.paths.iter().enumerate() {
            let _ = writeln!(
                out,
                "  path {}: {}  (queries {:.2}, standalone {:.2})",
                i + 1,
                p.selection.render(schema, &p.path),
                p.query_cost,
                p.standalone_cost
            );
        }
        for s in &self.shared {
            let _ = writeln!(
                out,
                "  shared {} × {} paths: maintenance {:.2} paid once (saves {:.2})",
                s.org,
                s.owners.len(),
                s.maintenance,
                s.saving
            );
        }
        let _ = writeln!(
            out,
            "total {:.2} vs independent {:.2}, footprint {:.0} pages \
             ({} sweeps, {} repriced paths, {} pricings this epoch, \
             {} DP runs, {} memo hits)",
            self.total_cost,
            self.independent_cost,
            self.size_pages,
            self.sweeps,
            self.repriced_paths,
            self.epoch_pricings,
            self.dp_runs,
            self.dp_memo_hits
        );
        let _ = writeln!(
            out,
            "{} components (largest {}), {} cells pruned, {} speculation skips, \
             {} ranks mined out ({} cells skipped)",
            self.components,
            self.largest_component,
            self.candidates_pruned,
            self.speculation_skips,
            self.candidates_mined_out,
            self.cells_skipped
        );
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oic_schema::fixtures;

    fn fig7_stats(schema: &Schema) -> impl FnMut(ClassId) -> ClassStats + '_ {
        |c| match schema.class_name(c) {
            "Person" => ClassStats::new(200_000.0, 20_000.0, 1.0),
            "Vehicle" => ClassStats::new(10_000.0, 5_000.0, 3.0),
            "Bus" | "Truck" => ClassStats::new(5_000.0, 2_500.0, 2.0),
            "Company" => ClassStats::new(1_000.0, 250.0, 4.0),
            "Division" => ClassStats::new(1_000.0, 1_000.0, 1.0),
            _ => ClassStats::new(1.0, 1.0, 1.0),
        }
    }

    fn two_path_advisor(schema: &Schema) -> WorkloadAdvisor<'_> {
        let pexa = fixtures::paper_path_pexa(schema);
        let pe = fixtures::paper_path_pe(schema);
        let mut adv = WorkloadAdvisor::new(schema, CostParams::default())
            .with_stats(fig7_stats(schema))
            .with_maintenance(|_| (0.1, 0.1));
        adv.add_path(pexa, |_| 0.2);
        adv.add_path(pe, |_| 0.3);
        adv
    }

    fn assert_costs_match(a: &WorkloadPlan, b: &WorkloadPlan) {
        assert!(
            (a.total_cost - b.total_cost).abs() < 1e-9 * a.total_cost.abs().max(1.0),
            "warm {} vs cold {}",
            a.total_cost,
            b.total_cost
        );
        assert!(
            (a.independent_cost - b.independent_cost).abs()
                < 1e-9 * a.independent_cost.abs().max(1.0),
            "warm independent {} vs cold {}",
            a.independent_cost,
            b.independent_cost
        );
    }

    #[test]
    fn single_path_matches_the_standalone_advisor() {
        let (schema, _) = fixtures::paper_schema();
        let pexa = fixtures::paper_path_pexa(&schema);
        let mut adv = WorkloadAdvisor::new(&schema, CostParams::default())
            .with_stats(fig7_stats(&schema))
            .with_maintenance(|_| (0.1, 0.1));
        adv.add_path(pexa.clone(), |_| 0.25);
        let plan = adv.optimize();
        // Cross-check against the single-path pipeline on the same inputs.
        let chars = PathCharacteristics::build(&schema, &pexa, |c| fig7_stats(&schema)(c));
        let ld = LoadDistribution::build(&schema, &pexa, |c| {
            let _ = c;
            Triplet::new(0.25, 0.1, 0.1)
        });
        let model = CostModel::new(&schema, &pexa, &chars, CostParams::default());
        let single = crate::select::opt_ind_con(&CostMatrix::build(&model, &ld));
        assert!((plan.total_cost - single.cost).abs() < 1e-6);
        assert_eq!(plan.paths[0].selection.pairs(), single.best.pairs());
        assert!(plan.shared.is_empty());
    }

    #[test]
    fn shared_prefix_is_priced_once() {
        let (schema, _) = fixtures::paper_schema();
        let plan = two_path_advisor(&schema).optimize();
        assert_eq!(plan.paths.len(), 2);
        // 10 Pexa subpaths + 3 Pe-only ones; priced at most once per org.
        assert_eq!(plan.candidates, 13);
        assert!(plan.maintenance_pricings <= 3 * plan.candidates as u64);
        assert_eq!(plan.maintenance_pricings, plan.epoch_pricings);
        assert!(plan.total_cost <= plan.independent_cost + 1e-9);
    }

    #[test]
    fn identical_paths_collapse_to_one_physical_design() {
        let (schema, _) = fixtures::paper_schema();
        let pexa = fixtures::paper_path_pexa(&schema);
        let mut adv = WorkloadAdvisor::new(&schema, CostParams::default())
            .with_stats(fig7_stats(&schema))
            .with_maintenance(|_| (0.1, 0.1));
        for _ in 0..5 {
            adv.add_path(pexa.clone(), |_| 0.2);
        }
        let plan = adv.optimize();
        // Five copies of the path expose exactly one path's candidates, and
        // pricing them never repeats per (candidate, org).
        assert_eq!(plan.candidates, SubpathId::count(4));
        assert_eq!(plan.maintenance_pricings, 3 * SubpathId::count(4) as u64);
        // All five paths select the same configuration; its indexes are
        // shared by all of them and maintenance is paid once.
        let first = plan.paths[0].selection.pairs().to_vec();
        for p in &plan.paths {
            assert_eq!(p.selection.pairs(), &first[..]);
        }
        for s in &plan.shared {
            assert_eq!(s.owners.len(), 5);
        }
        let expected: f64 = plan.paths.iter().map(|p| p.query_cost).sum::<f64>()
            + plan.shared.iter().map(|s| s.maintenance).sum::<f64>();
        assert!((plan.total_cost - expected).abs() < 1e-9);
        // Sharing 4 extra copies of the maintenance is a strict win.
        assert!(plan.total_cost < plan.independent_cost - 1e-9);
    }

    #[test]
    fn terminal_and_embedded_spellings_do_not_cross_contaminate() {
        // Person.owns as a complete path spells the same steps as the
        // first subpath of Pexa, but the embedded role pays the Vehicle
        // boundary-CMD and must be priced separately — whichever the
        // advisor prices first must not leak into the other. Verify the
        // workload totals re-derive from independently computed shares.
        let (schema, _) = fixtures::paper_schema();
        let owns = Path::parse(&schema, "Person", &["owns"]).unwrap();
        let pexa = fixtures::paper_path_pexa(&schema);
        let mut adv = WorkloadAdvisor::new(&schema, CostParams::default())
            .with_stats(fig7_stats(&schema))
            .with_maintenance(|_| (0.1, 0.1));
        adv.add_path(owns.clone(), |_| 0.4);
        adv.add_path(pexa.clone(), |_| 0.2);
        let plan = adv.optimize();
        // The len-1 path optimizing alone must cost exactly its standalone
        // single-path optimum — no contamination from Pexa's embedded
        // Person.owns pricing (and vice versa).
        for (path, alpha, outcome) in [(&owns, 0.4, &plan.paths[0]), (&pexa, 0.2, &plan.paths[1])] {
            let chars = PathCharacteristics::build(&schema, path, |c| fig7_stats(&schema)(c));
            let ld = LoadDistribution::build(&schema, path, |_| Triplet::new(alpha, 0.1, 0.1));
            let model = CostModel::new(&schema, path, &chars, CostParams::default());
            let single = crate::select::opt_ind_con(&CostMatrix::build(&model, &ld));
            assert!(
                (outcome.standalone_cost - single.cost).abs() < 1e-9 * single.cost.max(1.0),
                "standalone {} vs single-path optimum {}",
                outcome.standalone_cost,
                single.cost
            );
        }
        // The two spellings are distinct candidates; nothing is shared, so
        // the workload total equals the independent total.
        assert!(plan.shared.is_empty());
        assert!((plan.total_cost - plan.independent_cost).abs() < 1e-9);
    }

    #[test]
    fn maintenance_price_is_owner_independent() {
        // The decomposition hinges on M(candidate, org) being the same
        // through any owner's model; verify it directly for the shared
        // Per.owns.man prefix of Pexa and Pe.
        let (schema, _) = fixtures::paper_schema();
        let pexa = fixtures::paper_path_pexa(&schema);
        let pe = fixtures::paper_path_pe(&schema);
        let mut stats = fig7_stats(&schema);
        let chars_a = PathCharacteristics::build(&schema, &pexa, &mut stats);
        let chars_b = PathCharacteristics::build(&schema, &pe, &mut stats);
        let maint = |_: ClassId| Triplet::new(0.0, 0.1, 0.1);
        let ld_a = LoadDistribution::build(&schema, &pexa, maint);
        let ld_b = LoadDistribution::build(&schema, &pe, maint);
        let model_a = CostModel::new(&schema, &pexa, &chars_a, CostParams::default());
        let model_b = CostModel::new(&schema, &pe, &chars_b, CostParams::default());
        let sub = SubpathId { start: 1, end: 2 };
        for org in Org::ALL {
            let via_a = pc::processing_cost(&model_a, &ld_a, sub, Choice::Index(org));
            let via_b = pc::processing_cost(&model_b, &ld_b, sub, Choice::Index(org));
            assert!(
                (via_a - via_b).abs() < 1e-9 * via_a.abs().max(1.0),
                "{org}: {via_a} vs {via_b}"
            );
        }
    }

    // ---- budgeted selection tests -----------------------------------------

    #[test]
    fn infinite_budget_is_bit_identical_to_optimize() {
        let (schema, _) = fixtures::paper_schema();
        let plan = two_path_advisor(&schema).optimize();
        let budgeted = two_path_advisor(&schema).optimize_with_budget(f64::INFINITY);
        assert!(budgeted.feasible);
        assert_eq!(budgeted.lambda, 0.0);
        assert_eq!(budgeted.lambda_sweeps, 0);
        assert_eq!(
            budgeted.plan.total_cost.to_bits(),
            plan.total_cost.to_bits()
        );
        assert_eq!(
            budgeted.plan.size_pages.to_bits(),
            plan.size_pages.to_bits()
        );
        for (a, b) in budgeted.plan.paths.iter().zip(&plan.paths) {
            assert_eq!(a.selection.pairs(), b.selection.pairs());
        }
        // Any budget at or above the unconstrained footprint behaves the
        // same way (the constraint is slack).
        let relaxed = two_path_advisor(&schema).optimize_with_budget(plan.size_pages);
        assert_eq!(relaxed.plan.total_cost.to_bits(), plan.total_cost.to_bits());
    }

    #[test]
    fn plans_report_the_count_once_footprint() {
        let (schema, _) = fixtures::paper_schema();
        let pexa = fixtures::paper_path_pexa(&schema);
        let mut adv = WorkloadAdvisor::new(&schema, CostParams::default())
            .with_stats(fig7_stats(&schema))
            .with_maintenance(|_| (0.1, 0.1));
        for _ in 0..5 {
            adv.add_path(pexa.clone(), |_| 0.2);
        }
        let plan = adv.optimize();
        // Five copies select identically; the plan stores each physical
        // index once, so the footprint equals one path's configuration
        // size under the same model.
        let chars = PathCharacteristics::build(&schema, &pexa, |c| fig7_stats(&schema)(c));
        let model = CostModel::new(&schema, &pexa, &chars, CostParams::default());
        let expected: f64 = plan.paths[0]
            .selection
            .pairs()
            .iter()
            .map(|&(sub, choice)| match choice {
                Choice::Index(org) => model.size_pages(org, sub),
                Choice::NoIndex => 0.0,
            })
            .sum();
        assert!(
            (plan.size_pages - expected).abs() < 1e-9 * expected.max(1.0),
            "plan footprint {} vs one copy's {}",
            plan.size_pages,
            expected
        );
    }

    #[test]
    fn tight_budget_trades_cost_for_pages() {
        let (schema, _) = fixtures::paper_schema();
        let unconstrained = two_path_advisor(&schema).optimize();
        assert!(unconstrained.size_pages > 0.0);
        let budget = unconstrained.size_pages * 0.5;
        let budgeted = two_path_advisor(&schema).optimize_with_budget(budget);
        assert!(budgeted.feasible, "half the footprint should be reachable");
        assert!(
            budgeted.plan.size_pages <= budget + 1e-9,
            "{} > {budget}",
            budgeted.plan.size_pages
        );
        assert!(
            budgeted.plan.total_cost >= unconstrained.total_cost - 1e-9,
            "a constrained plan cannot beat the unconstrained optimum"
        );
        assert!(budgeted.cost_ratio() >= 1.0 - 1e-12);
        // λ is the multiplier of the winning sweep — 0 when the eviction
        // descent produced the plan instead.
        assert!(budgeted.lambda >= 0.0);
        assert!(budgeted.lambda_sweeps > 0);
    }

    #[test]
    fn budget_below_minimum_footprint_is_flagged_infeasible() {
        let (schema, _) = fixtures::paper_schema();
        let budgeted = two_path_advisor(&schema).optimize_with_budget(1.0);
        assert!(!budgeted.feasible, "one page cannot hold any plan");
        assert!(budgeted.plan.size_pages > 1.0);
        // The returned plan is the leanest sweep: no feasible-side λ was
        // found, and its footprint undercuts the unconstrained one.
        assert!(budgeted.plan.size_pages <= budgeted.unconstrained_size + 1e-9);
    }

    #[test]
    fn budgeted_plans_are_monotone_in_the_budget() {
        // A wider budget can only help: sweep a few budgets and check the
        // realized costs never increase with the budget.
        let (schema, _) = fixtures::paper_schema();
        let unconstrained = two_path_advisor(&schema).optimize();
        let mut last_cost = f64::INFINITY;
        for frac in [0.4, 0.6, 0.8, 1.0] {
            let b = two_path_advisor(&schema).optimize_with_budget(unconstrained.size_pages * frac);
            if !b.feasible {
                continue;
            }
            assert!(
                b.plan.total_cost <= last_cost + 1e-6 * last_cost.abs().max(1.0),
                "budget {frac}: cost {} after cheaper {last_cost}",
                b.plan.total_cost
            );
            last_cost = b.plan.total_cost;
        }
        assert!(
            (last_cost - unconstrained.total_cost).abs() < 1e-9 * unconstrained.total_cost.max(1.0),
            "the full budget recovers the unconstrained optimum"
        );
    }

    // ---- evolving-workload engine tests -----------------------------------

    #[test]
    fn clean_reoptimize_is_all_cache_hits() {
        let (schema, _) = fixtures::paper_schema();
        let mut adv = two_path_advisor(&schema);
        let first = adv.optimize();
        assert_eq!(first.epoch, 1);
        assert_eq!(first.repriced_paths, 2);
        // No mutations: the second plan re-derives from caches alone.
        let second = adv.reoptimize();
        assert_eq!(second.epoch, 2);
        assert_eq!(second.mutations, 0);
        assert_eq!(second.repriced_paths, 0, "no model rebuilds");
        assert_eq!(second.epoch_pricings, 0, "no maintenance pricings");
        assert!(
            second.dp_runs < first.dp_runs,
            "standalone optima cached, sweep responses partly memoized: {} vs {}",
            second.dp_runs,
            first.dp_runs
        );
        // Every sweep selection is either a DP run or a memo hit.
        assert_eq!(
            second.dp_runs + second.dp_memo_hits,
            2 * second.sweeps as u64
        );
        assert_eq!(second.total_cost.to_bits(), first.total_cost.to_bits());
    }

    #[test]
    fn stat_mutation_reprices_only_scoped_paths() {
        let (schema, _) = fixtures::paper_schema();
        let owns = Path::parse(&schema, "Person", &["owns"]).unwrap();
        let divs = Path::parse(&schema, "Company", &["divs", "name"]).unwrap();
        let mut adv = WorkloadAdvisor::new(&schema, CostParams::default())
            .with_stats(fig7_stats(&schema))
            .with_maintenance(|_| (0.1, 0.1));
        adv.add_path(owns, |_| 0.4);
        adv.add_path(divs, |_| 0.2);
        adv.optimize();
        // Division stats touch only the Company.divs.name path.
        let division = schema.class_by_name("Division").unwrap();
        assert!(adv.update_stats(division, ClassStats::new(2_000.0, 1_500.0, 1.0)));
        let plan = adv.reoptimize();
        assert_eq!(plan.mutations, 1);
        assert_eq!(plan.repriced_paths, 1, "Person.owns is out of scope");
        assert_costs_match(&plan, &adv.rebuild().optimize());
        // Re-applying the same value is a recognized no-op.
        assert!(!adv.update_stats(division, ClassStats::new(2_000.0, 1_500.0, 1.0)));
        let plan = adv.reoptimize();
        assert_eq!((plan.mutations, plan.repriced_paths), (0, 0));
    }

    #[test]
    fn warm_reoptimize_matches_cold_rebuild_across_mutation_kinds() {
        let (schema, _) = fixtures::paper_schema();
        let pexa = fixtures::paper_path_pexa(&schema);
        let pe = fixtures::paper_path_pe(&schema);
        let owns = Path::parse(&schema, "Person", &["owns"]).unwrap();
        let mut adv = two_path_advisor(&schema);
        adv.optimize();

        // Arrival.
        let owns_id = adv.add_path(owns.clone(), |_| 0.4);
        assert_costs_match(&adv.reoptimize(), &adv.rebuild().optimize());
        // Stat drift.
        let vehicle = schema.class_by_name("Vehicle").unwrap();
        adv.update_stats(vehicle, ClassStats::new(40_000.0, 9_000.0, 2.0));
        assert_costs_match(&adv.reoptimize(), &adv.rebuild().optimize());
        // Rate churn.
        let person = schema.class_by_name("Person").unwrap();
        adv.update_rates(person, (0.4, 0.02));
        assert_costs_match(&adv.reoptimize(), &adv.rebuild().optimize());
        // Per-path query churn.
        let first = adv.path_ids().next().unwrap();
        adv.update_query_rates(first, |_| 0.05);
        assert_costs_match(&adv.reoptimize(), &adv.rebuild().optimize());
        // Departure + re-arrival under a fresh handle, same signature.
        let removed = adv.remove_path(owns_id).expect("live handle");
        assert_eq!(removed.signature(), owns.signature());
        assert!(adv.remove_path(owns_id).is_none(), "handles are single-use");
        let owns_id2 = adv.add_path(owns.clone(), |_| 0.1);
        assert_ne!(owns_id, owns_id2);
        assert_eq!(
            adv.path_signature(owns_id2),
            Some(&owns.signature()),
            "re-arrival carries the same physical identity"
        );
        assert_costs_match(&adv.reoptimize(), &adv.rebuild().optimize());
        // Several batched mutations at once.
        adv.update_stats(person, ClassStats::new(150_000.0, 30_000.0, 1.0));
        adv.update_rates(vehicle, (0.0, 0.3));
        adv.remove_path(owns_id2);
        adv.add_path(pe.clone(), |_| 0.15);
        adv.add_path(pexa.clone(), |_| 0.05);
        let warm = adv.reoptimize();
        let cold = adv.rebuild().optimize();
        assert_costs_match(&warm, &cold);
        assert_eq!(warm.physical_indexes, cold.physical_indexes);
        assert_eq!(warm.paths.len(), cold.paths.len());
        for (w, c) in warm.paths.iter().zip(&cold.paths) {
            assert_eq!(w.selection.pairs(), c.selection.pairs());
        }
    }

    #[test]
    fn removing_the_last_owner_frees_candidates_and_plans_cite_live_ids() {
        let (schema, _) = fixtures::paper_schema();
        let mut adv = two_path_advisor(&schema);
        let plan = adv.optimize();
        assert_eq!(plan.candidates, 13);
        let pexa_id = adv.path_ids().next().unwrap();
        // Dropping Pexa frees its 7 exclusive candidates (3 are shared
        // with Pe).
        adv.remove_path(pexa_id);
        let plan = adv.reoptimize();
        assert_eq!(plan.paths.len(), 1);
        assert_eq!(plan.candidates, 6, "Pe's own subpaths only");
        assert_eq!(adv.candidate_space().len(), 6);
        // Every candidate the surviving plan cites is live, with a live
        // maintenance price.
        let pe_state_cands: Vec<CandidateId> = {
            let st = &adv.paths[0];
            plan.paths[0]
                .selection
                .pairs()
                .iter()
                .map(|&(sub, _)| st.cand(sub))
                .collect()
        };
        for (id, &(_, choice)) in pe_state_cands.iter().zip(plan.paths[0].selection.pairs()) {
            assert!(adv.candidate_space().is_live(*id));
            let Choice::Index(org) = choice else {
                unreachable!()
            };
            assert!(adv.candidate_space().priced_maintenance(*id, org).is_some());
        }
        // Removing the last path yields an empty plan, an empty space.
        let pe_id = adv.path_ids().next().unwrap();
        adv.remove_path(pe_id);
        let plan = adv.reoptimize();
        assert!(plan.paths.is_empty());
        assert_eq!(plan.total_cost, 0.0);
        assert_eq!(plan.physical_indexes, 0);
        assert!(adv.candidate_space().is_empty());
    }

    #[test]
    fn rate_churn_skips_query_share_recomputation() {
        let (schema, _) = fixtures::paper_schema();
        let mut adv = two_path_advisor(&schema);
        adv.optimize();
        let before: Vec<Vec<[f64; 3]>> =
            adv.paths.iter().map(|st| st.query_costs.clone()).collect();
        let person = schema.class_by_name("Person").unwrap();
        adv.update_rates(person, (0.9, 0.9));
        let plan = adv.reoptimize();
        assert_eq!(plan.repriced_paths, 2, "both paths scope Person");
        assert!(plan.epoch_pricings > 0, "invalidated cells repriced");
        for (st, old) in adv.paths.iter().zip(&before) {
            assert_eq!(&st.query_costs, old, "query shares are rate-blind");
        }
        assert_costs_match(&plan, &adv.rebuild().optimize());
    }
}
