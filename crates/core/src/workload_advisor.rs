//! Workload-scale selection: optimal index configurations for N paths at
//! once over a shared [`CandidateSpace`].
//!
//! The paper optimizes one path; real workloads (CoPhy, Dash et al.) are
//! hundreds of paths whose subpaths overlap. The advisor exploits two
//! structural facts:
//!
//! 1. **Processing cost is linear in the load** (Proposition 4.2 plus the
//!    `frequency × unit cost` shape of every `PC` term), so each cell
//!    splits exactly into a *query share* `Q_i(S, X)` — path-specific,
//!    because probe counts depend on the full path downstream of `S` — and
//!    a *maintenance share* `M(c, X)` that depends only on the physical
//!    candidate `c` — its step sequence, its embedded-vs-terminal role
//!    (part of the candidate identity: an embedded subpath absorbs the
//!    boundary `CMD` traffic of the class that follows it), and the shared
//!    per-class statistics and update rates — not on which path embeds it.
//! 2. **A physical index is built once.** When several paths allocate the
//!    same `(candidate, organization)`, its maintenance is paid once, so
//!    the workload objective is
//!    `Σ_i Q_i(selection_i) + Σ_{distinct (c, X) selected} M(c, X)`.
//!
//! Selection runs [`opt_ind_con_dp`] per path over an *effective* matrix —
//! a candidate already selected by another path contributes `Q_i` only —
//! and sweeps the paths in rounds (coordinate descent on the workload
//! objective, which is monotone nonincreasing and therefore converges)
//! until no selection changes. Maintenance prices are memoized in the
//! candidate space: a shared physical subpath is never priced twice.

use crate::select::opt_ind_con_dp;
use crate::space::{CandidateId, CandidateSpace};
use crate::{pc, Choice, CostMatrix, IndexConfiguration};
use oic_cost::{ClassStats, CostModel, CostParams, Org, PathCharacteristics};
use oic_schema::{ClassId, Path, Schema, SubpathId};
use oic_workload::{LoadDistribution, Triplet};
use std::collections::HashMap;

/// Maximum coordinate-descent rounds; the objective is monotone, so this is
/// a safety net, not a tuning knob (workloads converge in 2–3 sweeps).
const MAX_SWEEPS: usize = 8;

/// Builder for workload-scale selection. Class statistics and maintenance
/// rates are shared across the workload — the consistency that makes a
/// shared physical index's maintenance a property of the candidate alone;
/// query rates are per path.
pub struct WorkloadAdvisor<'a> {
    schema: &'a Schema,
    params: CostParams,
    /// `ClassStats` per class, dense by `ClassId`.
    stats: Vec<ClassStats>,
    /// `(β, γ)` insert/delete rates per class, dense by `ClassId`.
    maint: Vec<(f64, f64)>,
    /// Paths with their per-class query rates (dense by `ClassId`).
    paths: Vec<(Path, Vec<f64>)>,
}

/// One path's outcome in a [`WorkloadPlan`].
#[derive(Debug, Clone)]
pub struct PathOutcome {
    /// The path.
    pub path: Path,
    /// The selected configuration.
    pub selection: IndexConfiguration,
    /// The path-specific query share of the selection's cost.
    pub query_cost: f64,
    /// What the path would cost optimizing alone (paying all maintenance
    /// itself) — the single-path `Opt_Ind_Con` baseline.
    pub standalone_cost: f64,
}

/// A physical index selected by two or more paths.
#[derive(Debug, Clone)]
pub struct SharedIndexOutcome {
    /// The interned candidate.
    pub candidate: CandidateId,
    /// Its organization.
    pub org: Org,
    /// Indices (into [`WorkloadPlan::paths`]) of the owning paths.
    pub owners: Vec<usize>,
    /// The maintenance price, paid once.
    pub maintenance: f64,
    /// Maintenance avoided versus every owner paying separately.
    pub saving: f64,
}

/// The workload-scale physical design.
#[derive(Debug)]
pub struct WorkloadPlan {
    /// Per-path outcomes, in insertion order.
    pub paths: Vec<PathOutcome>,
    /// Physical indexes shared by ≥ 2 paths, by candidate id then org.
    pub shared: Vec<SharedIndexOutcome>,
    /// Σ of the standalone per-path optima.
    pub independent_cost: f64,
    /// The workload objective of the final selection: per-path query shares
    /// plus each distinct physical index's maintenance, once.
    pub total_cost: f64,
    /// Distinct `(candidate, organization)` pairs selected — the number of
    /// physical indexes the plan actually builds.
    pub physical_indexes: usize,
    /// Distinct physical candidates interned across the workload.
    pub candidates: usize,
    /// Maintenance prices computed (memo misses). Never exceeds
    /// `3 × candidates`, regardless of the path count.
    pub maintenance_pricings: u64,
    /// Coordinate-descent rounds until the selections stabilized.
    pub sweeps: usize,
}

impl<'a> WorkloadAdvisor<'a> {
    /// Binds the schema and physical parameters. Every class starts with
    /// singleton statistics and zero maintenance; override with
    /// [`Self::with_stats`] / [`Self::with_maintenance`].
    pub fn new(schema: &'a Schema, params: CostParams) -> Self {
        let nc = schema.class_count();
        WorkloadAdvisor {
            schema,
            params,
            stats: vec![ClassStats::new(1.0, 1.0, 1.0); nc],
            maint: vec![(0.0, 0.0); nc],
            paths: Vec::new(),
        }
    }

    /// Sets the shared per-class statistics.
    pub fn with_stats(mut self, mut stats: impl FnMut(ClassId) -> ClassStats) -> Self {
        for c in self.schema.class_ids() {
            self.stats[c.index()] = stats(c);
        }
        self
    }

    /// Sets the shared per-class `(insert, delete)` rates.
    pub fn with_maintenance(mut self, mut rates: impl FnMut(ClassId) -> (f64, f64)) -> Self {
        for c in self.schema.class_ids() {
            self.maint[c.index()] = rates(c);
        }
        self
    }

    /// Adds one path with its per-class query rates.
    pub fn add_path(mut self, path: Path, mut queries: impl FnMut(ClassId) -> f64) -> Self {
        let rates = self.schema.class_ids().map(&mut queries).collect();
        self.paths.push((path, rates));
        self
    }

    /// Number of paths added so far.
    pub fn path_count(&self) -> usize {
        self.paths.len()
    }

    /// Runs the workload-scale selection.
    ///
    /// # Panics
    /// Panics if no path was added.
    pub fn optimize(&self) -> WorkloadPlan {
        assert!(!self.paths.is_empty(), "add at least one path");
        // Per-path derived inputs. Characteristics/loads come from the
        // shared providers, so a candidate's maintenance price is the same
        // through any owner's model.
        let inputs: Vec<(PathCharacteristics, LoadDistribution)> = self
            .paths
            .iter()
            .map(|(path, alphas)| {
                let chars =
                    PathCharacteristics::build(self.schema, path, |c| self.stats[c.index()]);
                let ld = LoadDistribution::build(self.schema, path, |c| {
                    let (beta, gamma) = self.maint[c.index()];
                    Triplet::new(alphas[c.index()], beta, gamma)
                });
                (chars, ld)
            })
            .collect();
        let models: Vec<CostModel<'_>> = self
            .paths
            .iter()
            .zip(&inputs)
            .map(|((path, _), (chars, _))| CostModel::new(self.schema, path, chars, self.params))
            .collect();
        let query_lds: Vec<LoadDistribution> =
            inputs.iter().map(|(_, ld)| ld.query_only()).collect();
        let maint_lds: Vec<LoadDistribution> =
            inputs.iter().map(|(_, ld)| ld.maintenance_only()).collect();

        // Shared candidate space + per-path query shares by rank.
        let mut space = CandidateSpace::new();
        let cands: Vec<Vec<CandidateId>> = self
            .paths
            .iter()
            .map(|(path, _)| space.intern_path(path))
            .collect();
        let query_costs: Vec<Vec<[f64; 3]>> = self
            .paths
            .iter()
            .enumerate()
            .map(|(i, (path, _))| {
                let n = path.len();
                (0..SubpathId::count(n))
                    .map(|r| {
                        let sub = SubpathId::from_rank(n, r);
                        let mut cell = [0.0; 3];
                        for org in Org::ALL {
                            cell[org.index()] = pc::processing_cost(
                                &models[i],
                                &query_lds[i],
                                sub,
                                Choice::Index(org),
                            );
                        }
                        cell
                    })
                    .collect()
            })
            .collect();

        // One path's effective matrix under the current ownership: a
        // candidate already covered elsewhere contributes its query share
        // only. Maintenance prices flow through the space's memo — a shared
        // physical subpath is priced at most once across the whole run.
        let select_path = |i: usize,
                           space: &mut CandidateSpace,
                           covered: &HashMap<(CandidateId, Org), usize>|
         -> (Vec<(SubpathId, Org)>, f64) {
            let n = self.paths[i].0.len();
            let values: Vec<(SubpathId, [f64; 3])> = (0..SubpathId::count(n))
                .map(|r| {
                    let sub = SubpathId::from_rank(n, r);
                    let cand = cands[i][r];
                    let mut cell = [0.0; 3];
                    for org in Org::ALL {
                        let m = space.maintenance_cost(cand, org, || {
                            pc::processing_cost(&models[i], &maint_lds[i], sub, Choice::Index(org))
                        });
                        let shared = covered.get(&(cand, org)).is_some_and(|&c| c > 0);
                        cell[org.index()] =
                            query_costs[i][r][org.index()] + if shared { 0.0 } else { m };
                    }
                    (sub, cell)
                })
                .collect();
            let result = opt_ind_con_dp(&CostMatrix::from_values(n, &values));
            let pairs = result
                .best
                .pairs()
                .iter()
                .map(|&(sub, choice)| match choice {
                    Choice::Index(org) => (sub, org),
                    Choice::NoIndex => unreachable!("no no-index column at workload scale"),
                })
                .collect();
            (pairs, result.cost)
        };

        // Pass 1 — standalone optima: every path pays its own maintenance.
        let empty = HashMap::new();
        let mut selections: Vec<Vec<(SubpathId, Org)>> = Vec::with_capacity(self.paths.len());
        let mut standalone = Vec::with_capacity(self.paths.len());
        for i in 0..self.paths.len() {
            let (pairs, cost) = select_path(i, &mut space, &empty);
            selections.push(pairs);
            standalone.push(cost);
        }
        let independent_cost: f64 = standalone.iter().sum();

        // Sweeps — re-optimize each path against the others' selections.
        let mut owned: HashMap<(CandidateId, Org), usize> = HashMap::new();
        for (i, sel) in selections.iter().enumerate() {
            for &(sub, org) in sel {
                let n = self.paths[i].0.len();
                *owned.entry((cands[i][sub.rank(n)], org)).or_default() += 1;
            }
        }
        let mut sweeps = 0;
        for _ in 0..MAX_SWEEPS {
            sweeps += 1;
            let mut changed = false;
            for i in 0..self.paths.len() {
                let n = self.paths[i].0.len();
                for &(sub, org) in &selections[i] {
                    let key = (cands[i][sub.rank(n)], org);
                    let count = owned.get_mut(&key).expect("selection was registered");
                    *count -= 1;
                    if *count == 0 {
                        owned.remove(&key);
                    }
                }
                let (pairs, _) = select_path(i, &mut space, &owned);
                changed |= pairs != selections[i];
                for &(sub, org) in &pairs {
                    *owned.entry((cands[i][sub.rank(n)], org)).or_default() += 1;
                }
                selections[i] = pairs;
            }
            if !changed {
                break;
            }
        }

        // Assemble the plan: query shares per path, each distinct physical
        // index's maintenance exactly once.
        let mut owners: HashMap<(CandidateId, Org), Vec<usize>> = HashMap::new();
        let mut paths_out = Vec::with_capacity(self.paths.len());
        for (i, sel) in selections.iter().enumerate() {
            let (path, _) = &self.paths[i];
            let n = path.len();
            let mut query_cost = 0.0;
            let mut pairs = Vec::with_capacity(sel.len());
            for &(sub, org) in sel {
                query_cost += query_costs[i][sub.rank(n)][org.index()];
                owners
                    .entry((cands[i][sub.rank(n)], org))
                    .or_default()
                    .push(i);
                pairs.push((sub, Choice::Index(org)));
            }
            paths_out.push(PathOutcome {
                path: path.clone(),
                selection: IndexConfiguration::new(pairs, n)
                    .expect("DP selections concatenate to the full path"),
                query_cost,
                standalone_cost: standalone[i],
            });
        }
        let mut shared: Vec<SharedIndexOutcome> = owners
            .iter()
            .filter(|(_, own)| own.len() >= 2)
            .map(|(&(cand, org), own)| {
                let maintenance = space
                    .priced_maintenance(cand, org)
                    .expect("selected pairs were priced");
                SharedIndexOutcome {
                    candidate: cand,
                    org,
                    owners: own.clone(),
                    maintenance,
                    saving: maintenance * (own.len() - 1) as f64,
                }
            })
            .collect();
        shared.sort_by_key(|s| (s.candidate, s.org));
        let maintenance_total: f64 = owners
            .keys()
            .map(|&(cand, org)| {
                space
                    .priced_maintenance(cand, org)
                    .expect("selected pairs were priced")
            })
            .sum();
        let total_cost = paths_out.iter().map(|p| p.query_cost).sum::<f64>() + maintenance_total;
        debug_assert!(
            total_cost <= independent_cost + 1e-6 * independent_cost.abs().max(1.0),
            "sharing can only reduce the objective: {total_cost} vs {independent_cost}"
        );
        WorkloadPlan {
            paths: paths_out,
            shared,
            independent_cost,
            total_cost,
            physical_indexes: owners.len(),
            candidates: space.len(),
            maintenance_pricings: space.maintenance_pricings(),
            sweeps,
        }
    }
}

impl WorkloadPlan {
    /// Human-readable report.
    pub fn render(&self, schema: &Schema) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "workload plan: {} paths, {} physical indexes over {} candidates",
            self.paths.len(),
            self.physical_indexes,
            self.candidates
        );
        for (i, p) in self.paths.iter().enumerate() {
            let _ = writeln!(
                out,
                "  path {}: {}  (queries {:.2}, standalone {:.2})",
                i + 1,
                p.selection.render(schema, &p.path),
                p.query_cost,
                p.standalone_cost
            );
        }
        for s in &self.shared {
            let _ = writeln!(
                out,
                "  shared {} × {} paths: maintenance {:.2} paid once (saves {:.2})",
                s.org,
                s.owners.len(),
                s.maintenance,
                s.saving
            );
        }
        let _ = writeln!(
            out,
            "total {:.2} vs independent {:.2} ({} sweeps, {} maintenance pricings)",
            self.total_cost, self.independent_cost, self.sweeps, self.maintenance_pricings
        );
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oic_schema::fixtures;

    fn fig7_stats(schema: &Schema) -> impl FnMut(ClassId) -> ClassStats + '_ {
        |c| match schema.class_name(c) {
            "Person" => ClassStats::new(200_000.0, 20_000.0, 1.0),
            "Vehicle" => ClassStats::new(10_000.0, 5_000.0, 3.0),
            "Bus" | "Truck" => ClassStats::new(5_000.0, 2_500.0, 2.0),
            "Company" => ClassStats::new(1_000.0, 250.0, 4.0),
            "Division" => ClassStats::new(1_000.0, 1_000.0, 1.0),
            _ => ClassStats::new(1.0, 1.0, 1.0),
        }
    }

    fn two_path_advisor(schema: &Schema) -> WorkloadAdvisor<'_> {
        let pexa = fixtures::paper_path_pexa(schema);
        let pe = fixtures::paper_path_pe(schema);
        WorkloadAdvisor::new(schema, CostParams::default())
            .with_stats(fig7_stats(schema))
            .with_maintenance(|_| (0.1, 0.1))
            .add_path(pexa, |_| 0.2)
            .add_path(pe, |_| 0.3)
    }

    #[test]
    fn single_path_matches_the_standalone_advisor() {
        let (schema, _) = fixtures::paper_schema();
        let pexa = fixtures::paper_path_pexa(&schema);
        let plan = WorkloadAdvisor::new(&schema, CostParams::default())
            .with_stats(fig7_stats(&schema))
            .with_maintenance(|_| (0.1, 0.1))
            .add_path(pexa.clone(), |_| 0.25)
            .optimize();
        // Cross-check against the single-path pipeline on the same inputs.
        let chars = PathCharacteristics::build(&schema, &pexa, |c| fig7_stats(&schema)(c));
        let ld = LoadDistribution::build(&schema, &pexa, |c| {
            let _ = c;
            Triplet::new(0.25, 0.1, 0.1)
        });
        let model = CostModel::new(&schema, &pexa, &chars, CostParams::default());
        let single = crate::select::opt_ind_con(&CostMatrix::build(&model, &ld));
        assert!((plan.total_cost - single.cost).abs() < 1e-6);
        assert_eq!(plan.paths[0].selection.pairs(), single.best.pairs());
        assert!(plan.shared.is_empty());
    }

    #[test]
    fn shared_prefix_is_priced_once() {
        let (schema, _) = fixtures::paper_schema();
        let plan = two_path_advisor(&schema).optimize();
        assert_eq!(plan.paths.len(), 2);
        // 10 Pexa subpaths + 3 Pe-only ones; priced at most once per org.
        assert_eq!(plan.candidates, 13);
        assert!(plan.maintenance_pricings <= 3 * plan.candidates as u64);
        assert!(plan.total_cost <= plan.independent_cost + 1e-9);
    }

    #[test]
    fn identical_paths_collapse_to_one_physical_design() {
        let (schema, _) = fixtures::paper_schema();
        let pexa = fixtures::paper_path_pexa(&schema);
        let mut adv = WorkloadAdvisor::new(&schema, CostParams::default())
            .with_stats(fig7_stats(&schema))
            .with_maintenance(|_| (0.1, 0.1));
        for _ in 0..5 {
            adv = adv.add_path(pexa.clone(), |_| 0.2);
        }
        let plan = adv.optimize();
        // Five copies of the path expose exactly one path's candidates, and
        // pricing them never repeats per (candidate, org).
        assert_eq!(plan.candidates, SubpathId::count(4));
        assert_eq!(plan.maintenance_pricings, 3 * SubpathId::count(4) as u64);
        // All five paths select the same configuration; its indexes are
        // shared by all of them and maintenance is paid once.
        let first = plan.paths[0].selection.pairs().to_vec();
        for p in &plan.paths {
            assert_eq!(p.selection.pairs(), &first[..]);
        }
        for s in &plan.shared {
            assert_eq!(s.owners.len(), 5);
        }
        let expected: f64 = plan.paths.iter().map(|p| p.query_cost).sum::<f64>()
            + plan.shared.iter().map(|s| s.maintenance).sum::<f64>();
        assert!((plan.total_cost - expected).abs() < 1e-9);
        // Sharing 4 extra copies of the maintenance is a strict win.
        assert!(plan.total_cost < plan.independent_cost - 1e-9);
    }

    #[test]
    fn terminal_and_embedded_spellings_do_not_cross_contaminate() {
        // Person.owns as a complete path spells the same steps as the
        // first subpath of Pexa, but the embedded role pays the Vehicle
        // boundary-CMD and must be priced separately — whichever the
        // advisor prices first must not leak into the other. Verify the
        // workload totals re-derive from independently computed shares.
        let (schema, _) = fixtures::paper_schema();
        let owns = Path::parse(&schema, "Person", &["owns"]).unwrap();
        let pexa = fixtures::paper_path_pexa(&schema);
        let plan = WorkloadAdvisor::new(&schema, CostParams::default())
            .with_stats(fig7_stats(&schema))
            .with_maintenance(|_| (0.1, 0.1))
            .add_path(owns.clone(), |_| 0.4)
            .add_path(pexa.clone(), |_| 0.2)
            .optimize();
        // The len-1 path optimizing alone must cost exactly its standalone
        // single-path optimum — no contamination from Pexa's embedded
        // Person.owns pricing (and vice versa).
        for (path, alpha, outcome) in [(&owns, 0.4, &plan.paths[0]), (&pexa, 0.2, &plan.paths[1])] {
            let chars = PathCharacteristics::build(&schema, path, |c| fig7_stats(&schema)(c));
            let ld = LoadDistribution::build(&schema, path, |_| Triplet::new(alpha, 0.1, 0.1));
            let model = CostModel::new(&schema, path, &chars, CostParams::default());
            let single = crate::select::opt_ind_con(&CostMatrix::build(&model, &ld));
            assert!(
                (outcome.standalone_cost - single.cost).abs() < 1e-9 * single.cost.max(1.0),
                "standalone {} vs single-path optimum {}",
                outcome.standalone_cost,
                single.cost
            );
        }
        // The two spellings are distinct candidates; nothing is shared, so
        // the workload total equals the independent total.
        assert!(plan.shared.is_empty());
        assert!((plan.total_cost - plan.independent_cost).abs() < 1e-9);
    }

    #[test]
    fn maintenance_price_is_owner_independent() {
        // The decomposition hinges on M(candidate, org) being the same
        // through any owner's model; verify it directly for the shared
        // Per.owns.man prefix of Pexa and Pe.
        let (schema, _) = fixtures::paper_schema();
        let pexa = fixtures::paper_path_pexa(&schema);
        let pe = fixtures::paper_path_pe(&schema);
        let mut stats = fig7_stats(&schema);
        let chars_a = PathCharacteristics::build(&schema, &pexa, &mut stats);
        let chars_b = PathCharacteristics::build(&schema, &pe, &mut stats);
        let maint = |_: ClassId| Triplet::new(0.0, 0.1, 0.1);
        let ld_a = LoadDistribution::build(&schema, &pexa, maint);
        let ld_b = LoadDistribution::build(&schema, &pe, maint);
        let model_a = CostModel::new(&schema, &pexa, &chars_a, CostParams::default());
        let model_b = CostModel::new(&schema, &pe, &chars_b, CostParams::default());
        let sub = SubpathId { start: 1, end: 2 };
        for org in Org::ALL {
            let via_a = pc::processing_cost(&model_a, &ld_a, sub, Choice::Index(org));
            let via_b = pc::processing_cost(&model_b, &ld_b, sub, Choice::Index(org));
            assert!(
                (via_a - via_b).abs() < 1e-9 * via_a.abs().max(1.0),
                "{org}: {via_a} vs {via_b}"
            );
        }
    }
}
