//! Traced selection: the `Opt_Ind_Con` search as a narratable event stream,
//! mirroring the step-by-step exploration the paper walks through in
//! Section 5 (“We start with the index configuration {P, NIX} … Then the
//! path will be split into S1,n−1 and Sn,n …”).

use crate::select::SelectionResult;
use crate::{Choice, CostMatrix, IndexConfiguration};
use oic_schema::SubpathId;
use std::fmt;

/// One step of the branch-and-bound search.
#[derive(Debug, Clone, PartialEq)]
pub enum TraceEvent {
    /// A complete configuration's total cost was computed.
    Evaluated {
        /// The pieces (subpath, chosen organization).
        pieces: Vec<(SubpathId, Choice)>,
        /// Its total processing cost.
        cost: f64,
        /// Whether it became the best configuration so far.
        new_best: bool,
    },
    /// A partial prefix was abandoned: its accumulated cost already
    /// reached `PC_min`.
    Pruned {
        /// The prefix pieces.
        pieces: Vec<(SubpathId, Choice)>,
        /// Accumulated cost at the cut-off.
        accumulated: f64,
        /// The bound it failed against.
        bound: f64,
    },
}

impl fmt::Display for TraceEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let render = |pieces: &[(SubpathId, Choice)]| -> String {
            let parts: Vec<String> = pieces.iter().map(|(s, c)| format!("({s}, {c})")).collect();
            format!("{{{}}}", parts.join(", "))
        };
        match self {
            TraceEvent::Evaluated {
                pieces,
                cost,
                new_best,
            } => {
                write!(f, "evaluate {} = {cost}", render(pieces))?;
                if *new_best {
                    write!(f, "   ← new best")?;
                }
                Ok(())
            }
            TraceEvent::Pruned {
                pieces,
                accumulated,
                bound,
            } => write!(
                f,
                "prune    {}… ({accumulated} ≥ PC_min {bound})",
                render(pieces)
            ),
        }
    }
}

/// Runs `Opt_Ind_Con` while recording every evaluation and pruning decision
/// in search order. Returns the selection result together with the trace.
pub fn opt_ind_con_traced(matrix: &CostMatrix) -> (SelectionResult, Vec<TraceEvent>) {
    let n = matrix.path_len();
    let mut state = Traced {
        matrix,
        n,
        best: Vec::new(),
        best_cost: f64::INFINITY,
        events: Vec::new(),
    };
    state.descend(1, 0.0, &mut Vec::new());
    let evaluated = state
        .events
        .iter()
        .filter(|e| matches!(e, TraceEvent::Evaluated { .. }))
        .count() as u64;
    let pruned = state
        .events
        .iter()
        .filter(|e| matches!(e, TraceEvent::Pruned { .. }))
        .count() as u64;
    let result = SelectionResult {
        best: IndexConfiguration::new(state.best.clone(), n)
            .expect("search finds a covering configuration"),
        cost: state.best_cost,
        evaluated,
        pruned,
        candidate_space: 1u64 << (n - 1),
    };
    (result, state.events)
}

struct Traced<'a> {
    matrix: &'a CostMatrix,
    n: usize,
    best: Vec<(SubpathId, Choice)>,
    best_cost: f64,
    events: Vec<TraceEvent>,
}

impl Traced<'_> {
    fn descend(&mut self, start: usize, acc: f64, prefix: &mut Vec<(SubpathId, Choice)>) {
        for end in (start..=self.n).rev() {
            let sub = SubpathId { start, end };
            let (choice, cost) = self.matrix.min_cost(sub);
            let total = acc + cost;
            if end == self.n {
                let pieces: Vec<(SubpathId, Choice)> = prefix
                    .iter()
                    .copied()
                    .chain(std::iter::once((sub, choice)))
                    .collect();
                let new_best = total < self.best_cost;
                if new_best {
                    self.best_cost = total;
                    self.best = pieces.clone();
                }
                self.events.push(TraceEvent::Evaluated {
                    pieces,
                    cost: total,
                    new_best,
                });
            } else if total >= self.best_cost {
                let pieces: Vec<(SubpathId, Choice)> = prefix
                    .iter()
                    .copied()
                    .chain(std::iter::once((sub, choice)))
                    .collect();
                self.events.push(TraceEvent::Pruned {
                    pieces,
                    accumulated: total,
                    bound: self.best_cost,
                });
            } else {
                prefix.push((sub, choice));
                self.descend(end + 1, total, prefix);
                prefix.pop();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fig6::fig6_matrix;
    use crate::select::opt_ind_con;
    use oic_cost::Org;

    fn sid(s: usize, e: usize) -> SubpathId {
        SubpathId { start: s, end: e }
    }

    #[test]
    fn trace_reproduces_the_section5_narration() {
        // The paper narrates, in order: {P,NIX}=9 → {S13,S44}=12 →
        // {S12,S34}=12 → {S12,S33,S44}=12 → {S11,S24}=8 (best) →
        // prune {S11,S23} → {S11,S22,S34}=13 → prune {S11,S22,S33}.
        let (result, trace) = opt_ind_con_traced(&fig6_matrix());
        assert_eq!(result.cost, 8.0);
        let costs: Vec<(bool, f64)> = trace
            .iter()
            .map(|e| match e {
                TraceEvent::Evaluated { cost, .. } => (true, *cost),
                TraceEvent::Pruned { accumulated, .. } => (false, *accumulated),
            })
            .collect();
        assert_eq!(
            costs,
            vec![
                (true, 9.0),
                (true, 12.0),
                (true, 12.0),
                (true, 12.0),
                (true, 8.0),
                (false, 8.0), // {S11, S23} pruned at 3 + 5 = 8 ≥ 8
                (true, 13.0),
                (false, 9.0), // {S11, S22, S33} pruned at 3 + 4 + 2 = 9 ≥ 8
            ]
        );
        // The new-best flags: first candidate and the optimum.
        let best_flags: Vec<bool> = trace
            .iter()
            .filter_map(|e| match e {
                TraceEvent::Evaluated { new_best, .. } => Some(*new_best),
                _ => None,
            })
            .collect();
        assert_eq!(best_flags, vec![true, false, false, false, true, false]);
    }

    #[test]
    fn traced_and_plain_agree() {
        let m = fig6_matrix();
        let plain = opt_ind_con(&m);
        let (traced, events) = opt_ind_con_traced(&m);
        assert_eq!(plain.cost, traced.cost);
        assert_eq!(plain.best.pairs(), traced.best.pairs());
        assert_eq!(plain.evaluated, traced.evaluated);
        assert_eq!(plain.pruned, traced.pruned);
        assert!(!events.is_empty());
    }

    #[test]
    fn trace_events_render() {
        let (_, trace) = opt_ind_con_traced(&fig6_matrix());
        let first = trace[0].to_string();
        assert!(first.contains("evaluate"));
        assert!(first.contains("new best"));
        let pruned = trace
            .iter()
            .find(|e| matches!(e, TraceEvent::Pruned { .. }))
            .unwrap()
            .to_string();
        assert!(pruned.contains("prune"));
        assert!(pruned.contains("PC_min"));
    }

    #[test]
    fn first_evaluated_piece_is_whole_path() {
        let (_, trace) = opt_ind_con_traced(&fig6_matrix());
        let TraceEvent::Evaluated { pieces, .. } = &trace[0] else {
            panic!("first event must be an evaluation");
        };
        assert_eq!(pieces.len(), 1);
        assert_eq!(pieces[0], (sid(1, 4), Choice::Index(Org::Nix)));
    }
}
