//! The paper's Figure 6: the hypothetical cost matrix for
//! `Pex = C1.A1.A2.A3.A4` driving the Section 5 walkthrough.
//!
//! Only the row *minima* are recoverable from (and used by) the paper — the
//! walkthrough reads exactly one underlined value per row — and three rows
//! are printed in full. The remaining filler entries below are arbitrary
//! values strictly above their row minimum; `Opt_Ind_Con` never reads them.
//!
//! Row minima implied by the walkthrough text:
//!
//! | row  | min | org | evidence |
//! |------|-----|-----|----------|
//! | S1,1 | 3   | MX  | printed row “3 4 6”; `PC(S1,1) = 3` |
//! | S2,2 | 4   | MX  | printed row “4 4 4” (tie → first column) |
//! | S3,3 | 2   | MX  | printed row “2 3 4”; `PC(S3,3) = 2` |
//! | S4,4 | 4   | MX  | `(S4,4, MX)`, `PC = 4` |
//! | S1,2 | 6   | MIX | `(S1,2, MIX)`, `PC = 6` |
//! | S2,3 | 5   | —   | `PC(S2,3) = 5` (org not named) |
//! | S3,4 | 6   | NIX | `(S3,4, NIX)`, `PC = 6` |
//! | S1,3 | 8   | MIX | `(S1,3, MIX)`, `PC = 8` |
//! | S2,4 | 5   | NIX | optimal pairs `(C2.A2.A3.A4, NIX)`, `PC = 5` |
//! | S1,4 | 9   | NIX | initial `{P, NIX}`, `PC = 9` |

use crate::CostMatrix;
use oic_schema::SubpathId;

fn sid(s: usize, e: usize) -> SubpathId {
    SubpathId { start: s, end: e }
}

/// Builds the Figure 6 matrix.
pub fn fig6_matrix() -> CostMatrix {
    CostMatrix::from_values(
        4,
        &[
            // Length 1 — the first three rows are printed in the paper.
            (sid(1, 1), [3.0, 4.0, 6.0]),
            (sid(2, 2), [4.0, 4.0, 4.0]),
            (sid(3, 3), [2.0, 3.0, 4.0]),
            (sid(4, 4), [4.0, 5.0, 5.0]),
            // Length 2.
            (sid(1, 2), [7.0, 6.0, 8.0]),
            (sid(2, 3), [6.0, 5.0, 7.0]),
            (sid(3, 4), [7.0, 7.0, 6.0]),
            // Length 3.
            (sid(1, 3), [9.0, 8.0, 10.0]),
            (sid(2, 4), [7.0, 6.0, 5.0]),
            // Length 4.
            (sid(1, 4), [12.0, 10.0, 9.0]),
        ],
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::select::{exhaustive, opt_ind_con};
    use crate::Choice;
    use oic_cost::Org;

    #[test]
    fn row_minima_match_the_walkthrough() {
        let m = fig6_matrix();
        let expect = [
            (sid(1, 1), 3.0),
            (sid(2, 2), 4.0),
            (sid(3, 3), 2.0),
            (sid(4, 4), 4.0),
            (sid(1, 2), 6.0),
            (sid(2, 3), 5.0),
            (sid(3, 4), 6.0),
            (sid(1, 3), 8.0),
            (sid(2, 4), 5.0),
            (sid(1, 4), 9.0),
        ];
        for (sub, want) in expect {
            let (_, got) = m.min_cost(sub);
            assert_eq!(got, want, "row {sub}");
        }
    }

    #[test]
    fn walkthrough_optimum() {
        // “Thus the optimal configuration for Pex results
        //  {(C1.A1, MX), (C2.A2.A3.A4, NIX)} with processing cost 8.”
        let m = fig6_matrix();
        let r = opt_ind_con(&m);
        assert_eq!(r.cost, 8.0);
        assert_eq!(r.best.degree(), 2);
        assert_eq!(r.best.pairs()[0], (sid(1, 1), Choice::Index(Org::Mx)));
        assert_eq!(r.best.pairs()[1], (sid(2, 4), Choice::Index(Org::Nix)));
    }

    #[test]
    fn walkthrough_evaluation_counts() {
        // The paper's walkthrough computes the totals of six candidates —
        // [4], [3,1], [2,2], [2,1,1], [1,3], [1,1,2] — and prunes two —
        // [1,2,1] at prefix {S1,1, S2,3} and [1,1,1,1] at {S1,1, S2,2, S3,3}.
        let m = fig6_matrix();
        let r = opt_ind_con(&m);
        assert_eq!(r.candidate_space, 8);
        assert_eq!(r.evaluated, 6);
        assert_eq!(r.pruned, 2);
        // And the exhaustive baseline agrees on the optimum.
        let e = exhaustive(&m);
        assert_eq!(e.cost, r.cost);
        assert_eq!(e.evaluated, 8);
    }
}
