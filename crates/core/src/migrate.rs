//! Migration planning: from a target [`WorkloadPlan`] to an ordered,
//! budgeted index deployment (DESIGN.md §5.18).
//!
//! The advisor emits a *target* configuration as if every build landed
//! atomically; production cannot build a hundred indexes at once. Kimura
//! et al. ("Optimizing Index Deployment Order for Evolving OLAP") show
//! deployment *order* dominates interim performance: while the migration
//! is in flight the workload keeps running, and every hour spent under the
//! wrong interim configuration is real cost. [`MigrationPlanner`] turns a
//! `(current, target)` plan pair into a build/drop schedule that maximizes
//! cumulative interim benefit under a concurrency-and-space
//! [`MigrationEnvelope`]:
//!
//! * **Per-path switch semantics** — a path keeps running its current
//!   selection until *all* of its target pieces are built, then switches
//!   atomically. A half-built configuration is never active.
//! * **Greedy benefit-per-build-page ordering** — paths are ranked by
//!   `(query saving + maintenance freed by the switch) / unbuilt build
//!   pages` and their missing pieces are packed into waves of at most
//!   `concurrent_builds` concurrent builds. A wave's duration is its
//!   largest build (pages ≈ build I/O, the PR-4 size model).
//! * **Drop-before-build repair** — an index that no active arm and no
//!   target arm references is dropped *eagerly* at wave start, so its
//!   pages fund later builds under a tight space envelope. If no build
//!   fits even after every drop, scheduling fails with
//!   [`MigrationError::SpaceExceeded`] instead of silently violating the
//!   envelope.
//!
//! **Bit-consistent pricing.** Every interim state is priced through the
//! same memo machinery as [`WorkloadAdvisor::price_plan`]: per-piece query
//! shares are read from the adopted query-cost memos and per-index
//! maintenance from the [`WhatIfReport`](crate::WhatIfReport) memo arm,
//! and the interim fold replicates `selection_totals` exactly (one running
//! query accumulator in live-path order, distinct maintenance collected
//! and summed in `total_cmp` order). The schedule's `initial_cost` equals
//! `price_plan(current)` and `final_cost` equals `price_plan(target)`
//! **bitwise** — the planner never invents a number `optimize()` would not
//! quote.
//!
//! **Mid-migration churn.** The planner survives the workload evolving
//! under it: [`MigrationPlanner::retarget`] re-syncs the path set and
//! re-prices every arm after an [`OnlineTuner`](crate::OnlineTuner)
//! retune (built indexes are carried across by their durable physical
//! identity, not by recyclable [`CandidateId`](crate::CandidateId)s), and
//! [`MigrationPlanner::remove_path`] cancels scheduled-but-unbuilt builds
//! a departing path no longer justifies.

use crate::space::CandidateStep;
use crate::workload_advisor::{PathId, WorkloadAdvisor, WorkloadPlan};
use crate::Choice;
use oic_cost::Org;
use oic_schema::SubpathId;
use std::collections::{BTreeMap, BTreeSet, HashMap};

/// Durable physical identity of one index: the step sequence, the
/// embedded-vs-terminal role, and the organization. Unlike
/// [`CandidateId`](crate::CandidateId) (recycled when the last owning path
/// departs), this key survives arbitrary workload churn, so a half-run
/// migration can be re-targeted without losing track of what is built.
pub type IndexKey = (Vec<CandidateStep>, bool, Org);

/// The resource envelope a schedule must respect.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MigrationEnvelope {
    /// Maximum index builds in flight at once (one *wave*). Builds are
    /// page-dominated scans, so this caps the I/O parallelism spent on
    /// migration. Must be ≥ 1.
    pub concurrent_builds: usize,
    /// Maximum total footprint (pages) of built indexes at any instant,
    /// *including* builds in flight. The drop-before-build repair frees
    /// unused pages before each wave to stay inside this.
    pub space_pages: f64,
}

impl Default for MigrationEnvelope {
    fn default() -> Self {
        MigrationEnvelope {
            concurrent_builds: 1,
            space_pages: f64::INFINITY,
        }
    }
}

/// Why a schedule could not be produced.
#[derive(Debug, Clone, PartialEq)]
pub enum MigrationError {
    /// `concurrent_builds == 0`: nothing can ever be built.
    ZeroConcurrency,
    /// Even after dropping every unused index, the next cheapest build
    /// would exceed the space envelope.
    SpaceExceeded {
        /// Live pages plus the smallest pending build.
        need: f64,
        /// The envelope that was exceeded.
        envelope: f64,
    },
    /// A plan does not cover exactly the advisor's live path set (or a
    /// path's prices were stale — mutate, then `reoptimize()` first).
    PathSetMismatch,
}

impl std::fmt::Display for MigrationError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MigrationError::ZeroConcurrency => {
                write!(f, "migration envelope allows zero concurrent builds")
            }
            MigrationError::SpaceExceeded { need, envelope } => write!(
                f,
                "next build needs {need} pages but the envelope allows {envelope}"
            ),
            MigrationError::PathSetMismatch => {
                write!(f, "plan does not match the advisor's live path set")
            }
        }
    }
}

impl std::error::Error for MigrationError {}

/// What one schedule step does to its physical index.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MigrationAction {
    /// Build the index (costs `pages` of I/O, occupies `pages`).
    Build,
    /// Drop the index (instantaneous, frees `pages`).
    Drop,
}

/// One build or drop in a [`MigrationSchedule`].
#[derive(Debug, Clone, PartialEq)]
pub struct MigrationStep {
    /// The wave this step belongs to (0-based; a wave's builds run
    /// concurrently, its drops precede them).
    pub wave: usize,
    /// Build or drop.
    pub action: MigrationAction,
    /// The physical step sequence of the index.
    pub steps: Vec<CandidateStep>,
    /// Its embedded-vs-terminal role.
    pub embedded: bool,
    /// Its organization.
    pub org: Org,
    /// Its footprint in pages (≈ build I/O for a build).
    pub pages: f64,
}

/// An ordered deployment: the steps, the per-wave switch points, and the
/// interim-cost ledger.
#[derive(Debug, Clone)]
pub struct MigrationSchedule {
    /// Builds and drops in execution order.
    pub steps: Vec<MigrationStep>,
    /// `(wave, path)` switch points: the wave at whose start the path's
    /// target pieces were all built and it switched arms.
    pub switches: Vec<(usize, PathId)>,
    /// Number of build waves.
    pub waves: usize,
    /// Indexes built.
    pub builds: usize,
    /// Indexes dropped.
    pub drops: usize,
    /// Builds cancelled by path churn before this schedule (planner
    /// lifetime telemetry, not per call).
    pub cancelled: u64,
    /// Total pages built (Σ build I/O).
    pub build_pages: f64,
    /// Total duration: Σ per-wave max build pages.
    pub duration: f64,
    /// Unit workload cost before any step — `price_plan(current)`, bitwise.
    pub initial_cost: f64,
    /// Unit workload cost after the last step — `price_plan(target)`,
    /// bitwise.
    pub final_cost: f64,
    /// `Σ wave duration × unit cost during that wave` — the cumulative
    /// cost of the workload while the migration is in flight.
    pub interim_cost: f64,
    /// `interim_cost − duration × final_cost`: the regret integral, what
    /// the migration's *ordering* cost on top of the unavoidable
    /// steady-state floor. This is the number deployment order moves.
    pub interim_excess: f64,
}

/// One selected piece of one path's arm, with its captured prices.
#[derive(Debug, Clone)]
struct Piece {
    sub: SubpathId,
    org: Org,
    key: IndexKey,
    /// The path's query share under this piece — the adopted memo value.
    query: f64,
}

/// One path mid-migration: the arm it runs and the arm it is headed to.
#[derive(Debug, Clone)]
struct PathArm {
    id: PathId,
    current: Vec<Piece>,
    target: Vec<Piece>,
    /// `true` once every target piece is built and the path switched.
    switched: bool,
}

impl PathArm {
    fn active(&self) -> &[Piece] {
        if self.switched {
            &self.target
        } else {
            &self.current
        }
    }
}

/// Captured prices of one physical index.
#[derive(Debug, Clone)]
struct IndexInfo {
    maintenance: f64,
    pages: f64,
    built: bool,
}

/// Scheduling mode: the planner's ordering or the naive baseline.
#[derive(Debug, Clone, Copy, PartialEq)]
enum Mode {
    /// Benefit-per-page path ordering with eager drop-before-build.
    Greedy,
    /// Lexicographic build order, every drop deferred to the end.
    Naive,
}

/// The migration planner: captured `(current, target)` arms per path, the
/// physical index ledger, and the wave engine. See the module docs for
/// the objective and the envelope semantics.
#[derive(Debug, Clone)]
pub struct MigrationPlanner {
    paths: Vec<PathArm>,
    indexes: BTreeMap<IndexKey, IndexInfo>,
    cancelled: u64,
}

impl MigrationPlanner {
    /// Captures a migration from `current` to `target` under `advisor`'s
    /// *present* pricing state (call right after the `reoptimize()` that
    /// produced `target`, so every memo is clean). Both plans must cover
    /// exactly the advisor's live path set.
    ///
    /// The interim costs the planner quotes price the *old* configuration
    /// under the *new* statistics and rates — the true cost of keeping
    /// stale indexes while the migration runs.
    pub fn new(
        advisor: &WorkloadAdvisor<'_>,
        current: &WorkloadPlan,
        target: &WorkloadPlan,
    ) -> Result<MigrationPlanner, MigrationError> {
        if current.paths.len() != advisor.path_count() || target.paths.len() != advisor.path_count()
        {
            return Err(MigrationError::PathSetMismatch);
        }
        let cur_by_id: HashMap<PathId, usize> = current
            .paths
            .iter()
            .enumerate()
            .map(|(i, p)| (p.id, i))
            .collect();
        let tgt_by_id: HashMap<PathId, usize> = target
            .paths
            .iter()
            .enumerate()
            .map(|(i, p)| (p.id, i))
            .collect();
        let mut indexes = BTreeMap::new();
        let mut paths = Vec::with_capacity(advisor.path_count());
        for id in advisor.path_ids().collect::<Vec<_>>() {
            let cur = *cur_by_id.get(&id).ok_or(MigrationError::PathSetMismatch)?;
            let tgt = *tgt_by_id.get(&id).ok_or(MigrationError::PathSetMismatch)?;
            let current_arm = Self::capture_arm(
                advisor,
                id,
                &selection_of(&current.paths[cur].selection),
                &mut indexes,
                true,
            )?;
            let target_arm = Self::capture_arm(
                advisor,
                id,
                &selection_of(&target.paths[tgt].selection),
                &mut indexes,
                false,
            )?;
            paths.push(PathArm {
                id,
                current: current_arm,
                target: target_arm,
                switched: false,
            });
        }
        Ok(MigrationPlanner {
            paths,
            indexes,
            cancelled: 0,
        })
    }

    /// Prices one arm of one path through the memo machinery: query shares
    /// from the adopted query-cost memos, maintenance and footprint from
    /// the [`WorkloadAdvisor::what_if`] memo arm. `mark_built` records the
    /// arm's indexes as physically present (the deployed current arms).
    fn capture_arm(
        advisor: &WorkloadAdvisor<'_>,
        id: PathId,
        arm: &[(SubpathId, Org)],
        indexes: &mut BTreeMap<IndexKey, IndexInfo>,
        mark_built: bool,
    ) -> Result<Vec<Piece>, MigrationError> {
        let path = advisor.path(id).ok_or(MigrationError::PathSetMismatch)?;
        let n = path.len();
        let mut pieces = Vec::with_capacity(arm.len());
        for &(sub, org) in arm {
            let steps = path.step_keys(sub);
            let embedded = sub.end < n;
            let key: IndexKey = (steps, embedded, org);
            let query = advisor
                .query_share(id, sub, org)
                .ok_or(MigrationError::PathSetMismatch)?;
            let report = advisor.what_if(path, sub);
            let entry = indexes.entry(key.clone()).or_insert(IndexInfo {
                maintenance: report.maintenance[org.index()],
                pages: report.size_pages[org.index()],
                built: false,
            });
            if mark_built {
                entry.built = true;
            }
            pieces.push(Piece {
                sub,
                org,
                key,
                query,
            });
        }
        Ok(pieces)
    }

    /// Builds cancelled by path churn so far.
    pub fn cancelled(&self) -> u64 {
        self.cancelled
    }

    /// Whether the migration has fully landed: every path switched to its
    /// target arm and no stale index remains built.
    pub fn is_complete(&self) -> bool {
        let targets: BTreeSet<&IndexKey> = self
            .paths
            .iter()
            .flat_map(|p| p.target.iter().map(|pc| &pc.key))
            .collect();
        self.paths
            .iter()
            .all(|p| p.target.iter().all(|pc| self.indexes[&pc.key].built))
            && self
                .indexes
                .iter()
                .all(|(k, i)| !i.built || targets.contains(k))
    }

    /// The unit workload cost of the planner's present interim state:
    /// every path's active arm's query shares plus the maintenance of
    /// every *built* index, once. The fold replicates the advisor's
    /// `selection_totals` (single query accumulator in live-path order;
    /// distinct maintenance summed in `total_cmp` order), so a state where
    /// every path runs one plan consistently prices bit-equal to
    /// [`WorkloadAdvisor::price_plan`] on that plan.
    pub fn current_cost(&self) -> f64 {
        let mut query = 0.0;
        for p in &self.paths {
            for piece in p.active() {
                query += piece.query;
            }
        }
        let mut maint: Vec<f64> = self
            .indexes
            .values()
            .filter(|i| i.built)
            .map(|i| i.maintenance)
            .collect();
        maint.sort_by(f64::total_cmp);
        query + maint.iter().sum::<f64>()
    }

    /// The planner's schedule: benefit-per-page ordering with the
    /// drop-before-build repair. Pure — the planner is not advanced; use
    /// [`MigrationPlanner::advance`] to actually walk the migration.
    pub fn schedule(
        &self,
        envelope: MigrationEnvelope,
    ) -> Result<MigrationSchedule, MigrationError> {
        self.run(envelope, Mode::Greedy)
    }

    /// The naive baseline: builds in lexicographic physical-key order,
    /// every drop deferred until all builds land. Same wave machinery and
    /// the same pricing, so [`MigrationSchedule::interim_excess`] is
    /// directly comparable with [`MigrationPlanner::schedule`] — the
    /// difference is purely the ordering.
    pub fn naive_schedule(
        &self,
        envelope: MigrationEnvelope,
    ) -> Result<MigrationSchedule, MigrationError> {
        self.run(envelope, Mode::Naive)
    }

    fn run(
        &self,
        envelope: MigrationEnvelope,
        mode: Mode,
    ) -> Result<MigrationSchedule, MigrationError> {
        if envelope.concurrent_builds == 0 {
            return Err(MigrationError::ZeroConcurrency);
        }
        let mut sim = self.clone();
        let initial_cost = sim.current_cost();
        let mut steps = Vec::new();
        let mut switches = Vec::new();
        let mut wave = 0usize;
        let mut builds = 0usize;
        let mut build_pages = 0.0f64;
        let mut duration = 0.0f64;
        let mut interim_cost = 0.0f64;
        loop {
            sim.settle(mode == Mode::Greedy, wave, &mut steps, &mut switches);
            if sim.unbuilt_targets().is_empty() {
                if mode == Mode::Naive {
                    sim.drop_stale(wave, &mut steps);
                }
                break;
            }
            let unit_before = sim.current_cost();
            let chosen = sim.pick_builds(envelope, mode)?;
            let wave_pages = chosen
                .iter()
                .map(|k| sim.indexes[k].pages)
                .fold(0.0, f64::max);
            interim_cost += wave_pages * unit_before;
            duration += wave_pages;
            for key in chosen {
                let info = sim.indexes.get_mut(&key).expect("chosen key is ledgered");
                info.built = true;
                builds += 1;
                build_pages += info.pages;
                steps.push(MigrationStep {
                    wave,
                    action: MigrationAction::Build,
                    steps: key.0.clone(),
                    embedded: key.1,
                    org: key.2,
                    pages: info.pages,
                });
            }
            wave += 1;
        }
        let final_cost = sim.current_cost();
        let drops = steps
            .iter()
            .filter(|s| s.action == MigrationAction::Drop)
            .count();
        Ok(MigrationSchedule {
            steps,
            switches,
            waves: wave,
            builds,
            drops,
            cancelled: self.cancelled,
            build_pages,
            duration,
            initial_cost,
            final_cost,
            interim_cost,
            interim_excess: interim_cost - duration * final_cost,
        })
    }

    /// Advances the live migration by one wave under the planner's own
    /// ordering: wave-start switches and eager drops, then up to
    /// `concurrent_builds` builds marked built. Returns the steps the wave
    /// performed, or `None` when the migration is already complete. A
    /// driver alternates `advance` with tuner epochs and calls
    /// [`MigrationPlanner::retarget`] when a retune moves the target.
    pub fn advance(
        &mut self,
        envelope: MigrationEnvelope,
    ) -> Result<Option<Vec<MigrationStep>>, MigrationError> {
        if envelope.concurrent_builds == 0 {
            return Err(MigrationError::ZeroConcurrency);
        }
        let mut steps = Vec::new();
        let mut switches = Vec::new();
        self.settle(true, 0, &mut steps, &mut switches);
        if self.unbuilt_targets().is_empty() {
            return Ok(if steps.is_empty() { None } else { Some(steps) });
        }
        let chosen = self.pick_builds(envelope, Mode::Greedy)?;
        for key in chosen {
            let info = self.indexes.get_mut(&key).expect("chosen key is ledgered");
            info.built = true;
            steps.push(MigrationStep {
                wave: 0,
                action: MigrationAction::Build,
                steps: key.0.clone(),
                embedded: key.1,
                org: key.2,
                pages: info.pages,
            });
        }
        Ok(Some(steps))
    }

    /// Re-targets a half-run migration after the workload moved under it:
    /// re-syncs the path set against `advisor` and re-prices every arm
    /// under its present memos (call right after the `reoptimize()` that
    /// produced `target`). Built indexes are carried across by their
    /// durable [`IndexKey`] — what is physically on disk does not change
    /// because the optimizer changed its mind.
    ///
    /// * A **switched** path's current arm becomes its old target (that is
    ///   what it runs now); an unswitched path keeps its old current arm.
    /// * A **departed** path cancels its scheduled-but-unbuilt builds
    ///   (counted in [`MigrationPlanner::cancelled`]) unless another
    ///   path's new target still needs them; its built indexes stay until
    ///   the eager drop pass collects them.
    /// * An **arriving** path is adopted at its target arm directly
    ///   (`current = target`) — it has no deployed old configuration to
    ///   price, so it contributes no interim switch of its own. Its
    ///   missing indexes are scheduled like any other build.
    pub fn retarget(
        &mut self,
        advisor: &WorkloadAdvisor<'_>,
        target: &WorkloadPlan,
    ) -> Result<(), MigrationError> {
        if target.paths.len() != advisor.path_count() {
            return Err(MigrationError::PathSetMismatch);
        }
        let tgt_by_id: HashMap<PathId, usize> = target
            .paths
            .iter()
            .enumerate()
            .map(|(i, p)| (p.id, i))
            .collect();
        let old_paths: HashMap<PathId, PathArm> = self.paths.drain(..).map(|p| (p.id, p)).collect();
        let old_indexes = std::mem::take(&mut self.indexes);
        let mut old_paths = old_paths;
        let mut indexes = BTreeMap::new();
        let mut paths = Vec::with_capacity(advisor.path_count());
        for id in advisor.path_ids().collect::<Vec<_>>() {
            let t = *tgt_by_id.get(&id).ok_or(MigrationError::PathSetMismatch)?;
            let target_sel = selection_of(&target.paths[t].selection);
            let target_arm = Self::capture_arm(advisor, id, &target_sel, &mut indexes, false)?;
            let (current_arm, switched) = match old_paths.remove(&id) {
                Some(prev) => {
                    let running = if prev.switched {
                        prev.target
                    } else {
                        prev.current
                    };
                    let sel: Vec<(SubpathId, Org)> =
                        running.iter().map(|pc| (pc.sub, pc.org)).collect();
                    (
                        Self::capture_arm(advisor, id, &sel, &mut indexes, false)?,
                        false,
                    )
                }
                None => (target_arm.clone(), false),
            };
            paths.push(PathArm {
                id,
                current: current_arm,
                target: target_arm,
                switched,
            });
        }
        // Carry the built set across by durable key; re-captured entries
        // keep the freshly-captured prices, stale built leftovers keep
        // their old ones (they only live until the next eager drop).
        for (key, old) in old_indexes {
            if !old.built {
                continue;
            }
            indexes
                .entry(key)
                .and_modify(|e| e.built = true)
                .or_insert(IndexInfo { built: true, ..old });
        }
        // Departed paths cancel the unbuilt builds nobody else wants.
        let needed: BTreeSet<&IndexKey> = paths
            .iter()
            .flat_map(|p| p.target.iter().chain(p.current.iter()).map(|pc| &pc.key))
            .collect();
        for (_, prev) in old_paths {
            let mut seen = BTreeSet::new();
            for piece in &prev.target {
                let unbuilt = !indexes.get(&piece.key).map(|i| i.built).unwrap_or(false);
                if unbuilt && !needed.contains(&piece.key) && seen.insert(piece.key.clone()) {
                    indexes.remove(&piece.key);
                    self.cancelled += 1;
                }
            }
        }
        self.paths = paths;
        self.indexes = indexes;
        Ok(())
    }

    /// Removes a departing path mid-migration (mirror of
    /// [`WorkloadAdvisor::remove_path`]): its scheduled-but-unbuilt builds
    /// are cancelled unless another path's target still needs them, its
    /// built indexes stay until the eager drop pass collects them. Returns
    /// the number of builds cancelled. Unknown handles are a no-op.
    pub fn remove_path(&mut self, id: PathId) -> usize {
        let Some(pos) = self.paths.iter().position(|p| p.id == id) else {
            return 0;
        };
        let departed = self.paths.remove(pos);
        let needed: BTreeSet<&IndexKey> = self
            .paths
            .iter()
            .flat_map(|p| p.target.iter().chain(p.current.iter()).map(|pc| &pc.key))
            .collect();
        let mut cancelled = 0;
        let mut seen = BTreeSet::new();
        for piece in &departed.target {
            let unbuilt = !self
                .indexes
                .get(&piece.key)
                .map(|i| i.built)
                .unwrap_or(false);
            if unbuilt && !needed.contains(&piece.key) && seen.insert(piece.key.clone()) {
                self.indexes.remove(&piece.key);
                cancelled += 1;
            }
        }
        self.cancelled += cancelled as u64;
        cancelled
    }

    // ---- wave engine ------------------------------------------------------

    /// Instantaneous wave-start transitions to fixpoint: switch every path
    /// whose target pieces are all built; when `eager`, drop every built
    /// index no active arm and no target arm references (switching frees
    /// indexes, so the two interleave until quiescent).
    fn settle(
        &mut self,
        eager: bool,
        wave: usize,
        steps: &mut Vec<MigrationStep>,
        switches: &mut Vec<(usize, PathId)>,
    ) {
        loop {
            let mut changed = false;
            let ready: Vec<usize> = self
                .paths
                .iter()
                .enumerate()
                .filter(|(_, p)| {
                    !p.switched && p.target.iter().all(|pc| self.indexes[&pc.key].built)
                })
                .map(|(i, _)| i)
                .collect();
            for i in ready {
                self.paths[i].switched = true;
                switches.push((wave, self.paths[i].id));
                changed = true;
            }
            if eager {
                for key in self.droppable() {
                    let info = self.indexes.remove(&key).expect("droppable is ledgered");
                    steps.push(MigrationStep {
                        wave,
                        action: MigrationAction::Drop,
                        steps: key.0,
                        embedded: key.1,
                        org: key.2,
                        pages: info.pages,
                    });
                    changed = true;
                }
            }
            if !changed {
                break;
            }
        }
    }

    /// Built indexes no active arm and no target arm references.
    fn droppable(&self) -> Vec<IndexKey> {
        let referenced: BTreeSet<&IndexKey> = self
            .paths
            .iter()
            .flat_map(|p| p.active().iter().chain(p.target.iter()).map(|pc| &pc.key))
            .collect();
        self.indexes
            .iter()
            .filter(|(k, i)| i.built && !referenced.contains(k))
            .map(|(k, _)| k.clone())
            .collect()
    }

    /// Terminal drop pass of the naive baseline: everything built that no
    /// target references goes at once, after the last build.
    fn drop_stale(&mut self, wave: usize, steps: &mut Vec<MigrationStep>) {
        let targets: BTreeSet<&IndexKey> = self
            .paths
            .iter()
            .flat_map(|p| p.target.iter().map(|pc| &pc.key))
            .collect();
        let stale: Vec<IndexKey> = self
            .indexes
            .iter()
            .filter(|(k, i)| i.built && !targets.contains(k))
            .map(|(k, _)| k.clone())
            .collect();
        for key in stale {
            let info = self.indexes.remove(&key).expect("stale is ledgered");
            steps.push(MigrationStep {
                wave,
                action: MigrationAction::Drop,
                steps: key.0,
                embedded: key.1,
                org: key.2,
                pages: info.pages,
            });
        }
    }

    /// Distinct target keys not yet built, in lexicographic order.
    fn unbuilt_targets(&self) -> Vec<IndexKey> {
        let mut out = BTreeSet::new();
        for p in &self.paths {
            for piece in &p.target {
                if !self.indexes[&piece.key].built {
                    out.insert(piece.key.clone());
                }
            }
        }
        out.into_iter().collect()
    }

    /// Packs the next wave: up to `concurrent_builds` unbuilt keys that
    /// fit the space envelope, in benefit-per-page path order (greedy) or
    /// lexicographic key order (naive). Errs with `SpaceExceeded` when
    /// nothing fits — the caller's drops already ran, so there is nothing
    /// left to repair with.
    fn pick_builds(
        &self,
        envelope: MigrationEnvelope,
        mode: Mode,
    ) -> Result<Vec<IndexKey>, MigrationError> {
        let live_pages: f64 = self
            .indexes
            .values()
            .filter(|i| i.built)
            .map(|i| i.pages)
            .sum();
        let ordered: Vec<IndexKey> = match mode {
            Mode::Naive => self.unbuilt_targets(),
            Mode::Greedy => {
                let mut out = Vec::new();
                for i in self.ranked_paths() {
                    for piece in &self.paths[i].target {
                        if !self.indexes[&piece.key].built && !out.contains(&piece.key) {
                            out.push(piece.key.clone());
                        }
                    }
                }
                out
            }
        };
        let mut chosen: Vec<IndexKey> = Vec::new();
        let mut chosen_pages = 0.0f64;
        for key in ordered {
            if chosen.len() == envelope.concurrent_builds {
                break;
            }
            if chosen.contains(&key) {
                continue;
            }
            let pages = self.indexes[&key].pages;
            if live_pages + chosen_pages + pages <= envelope.space_pages {
                chosen_pages += pages;
                chosen.push(key);
            }
        }
        if chosen.is_empty() {
            let smallest = self
                .unbuilt_targets()
                .iter()
                .map(|k| self.indexes[k].pages)
                .fold(f64::INFINITY, f64::min);
            return Err(MigrationError::SpaceExceeded {
                need: live_pages + smallest,
                envelope: envelope.space_pages,
            });
        }
        Ok(chosen)
    }

    /// Unswitched paths with unbuilt target pieces, ranked by the benefit
    /// their switch buys per page their missing builds cost: query saving
    /// `(current − target)` plus the maintenance of every index their
    /// switch would free, over the pages still to build. Ties break by
    /// `PathId` ascending, so the order is fully deterministic.
    fn ranked_paths(&self) -> Vec<usize> {
        let mut scored: Vec<(f64, usize)> = Vec::new();
        for (i, p) in self.paths.iter().enumerate() {
            if p.switched {
                continue;
            }
            let mut pages = 0.0f64;
            let mut missing = BTreeSet::new();
            for piece in &p.target {
                if !self.indexes[&piece.key].built && missing.insert(&piece.key) {
                    pages += self.indexes[&piece.key].pages;
                }
            }
            if pages == 0.0 {
                continue; // settles instantly at the next wave start
            }
            let cur_q: f64 = p.current.iter().map(|pc| pc.query).sum();
            let tgt_q: f64 = p.target.iter().map(|pc| pc.query).sum();
            let freed = self.freed_by_switch(i);
            scored.push(((cur_q - tgt_q + freed) / pages, i));
        }
        scored.sort_by(|a, b| {
            b.0.total_cmp(&a.0)
                .then_with(|| self.paths[a.1].id.cmp(&self.paths[b.1].id))
        });
        scored.into_iter().map(|(_, i)| i).collect()
    }

    /// Maintenance freed if path `i` switched now: its current-arm indexes
    /// that are built and that no other active arm and no target arm
    /// references — exactly what the eager drop pass would then collect.
    fn freed_by_switch(&self, i: usize) -> f64 {
        let referenced: BTreeSet<&IndexKey> = self
            .paths
            .iter()
            .enumerate()
            .flat_map(|(j, p)| {
                let active = if j == i { &[][..] } else { p.active() };
                active.iter().chain(p.target.iter()).map(|pc| &pc.key)
            })
            .collect();
        let mut freed = 0.0;
        let mut seen = BTreeSet::new();
        for piece in &self.paths[i].current {
            if referenced.contains(&piece.key) || !seen.insert(&piece.key) {
                continue;
            }
            if let Some(info) = self.indexes.get(&piece.key) {
                if info.built {
                    freed += info.maintenance;
                }
            }
        }
        freed
    }
}

/// The `(subpath, organization)` pieces of a selection, in its own order
/// (no-index choices never appear at workload scale; skipped defensively).
fn selection_of(config: &crate::IndexConfiguration) -> Vec<(SubpathId, Org)> {
    config
        .pairs()
        .iter()
        .filter_map(|&(sub, choice)| match choice {
            Choice::Index(org) => Some((sub, org)),
            Choice::NoIndex => None,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use oic_cost::{ClassStats, CostParams};
    use oic_schema::{fixtures, ClassId};

    fn advisor(schema: &oic_schema::Schema) -> WorkloadAdvisor<'_> {
        let mut adv = WorkloadAdvisor::new(schema, CostParams::default())
            .with_stats(|_| ClassStats::new(500.0, 50.0, 2.0))
            .with_maintenance(|_| (0.05, 0.02));
        adv.add_path(fixtures::paper_path_pexa(schema), |_| 0.1);
        adv.add_path(fixtures::paper_path_pe(schema), |_| 0.2);
        adv
    }

    /// A `(current, target)` pair that actually differs: the paper
    /// workload re-optimized under 40× update traffic.
    fn drifted(adv: &mut WorkloadAdvisor<'_>) -> (WorkloadPlan, WorkloadPlan) {
        let current = adv.optimize();
        for c in 0..adv.class_count() {
            adv.update_rates(ClassId(c as u32), (2.0, 0.8));
        }
        let target = adv.reoptimize();
        (current, target)
    }

    #[test]
    fn empty_diff_yields_empty_schedule() {
        let (schema, _) = fixtures::paper_schema();
        let mut adv = advisor(&schema);
        let a = adv.optimize();
        let b = adv.reoptimize();
        let planner = MigrationPlanner::new(&adv, &a, &b).expect("same path set");
        assert!(planner.is_complete());
        let sched = planner.schedule(MigrationEnvelope::default()).expect("ok");
        assert!(sched.steps.is_empty(), "nothing to build or drop");
        assert_eq!(sched.waves, 0);
        assert_eq!(sched.duration, 0.0);
        assert_eq!(sched.interim_cost, 0.0);
        assert_eq!(sched.interim_excess, 0.0);
        assert_eq!(sched.initial_cost, sched.final_cost);
    }

    #[test]
    fn zero_concurrency_envelope_errors_cleanly() {
        let (schema, _) = fixtures::paper_schema();
        let mut adv = advisor(&schema);
        let (current, target) = drifted(&mut adv);
        let planner = MigrationPlanner::new(&adv, &current, &target).expect("same path set");
        let envelope = MigrationEnvelope {
            concurrent_builds: 0,
            space_pages: f64::INFINITY,
        };
        let err = planner.schedule(envelope).expect_err("zero concurrency");
        assert_eq!(err, MigrationError::ZeroConcurrency);
        assert!(err.to_string().contains("zero concurrent builds"));
    }

    #[test]
    fn endpoints_price_bitwise_like_price_plan() {
        let (schema, _) = fixtures::paper_schema();
        let mut adv = advisor(&schema);
        let (current, target) = drifted(&mut adv);
        let planner = MigrationPlanner::new(&adv, &current, &target).expect("same path set");
        let sched = planner.schedule(MigrationEnvelope::default()).expect("ok");
        assert_eq!(
            sched.initial_cost.to_bits(),
            adv.price_plan(&current).to_bits(),
            "start state prices exactly like the old plan under the new rates"
        );
        assert_eq!(
            sched.final_cost.to_bits(),
            adv.price_plan(&target).to_bits(),
            "end state prices exactly like the target plan"
        );
        assert_eq!(
            sched.final_cost.to_bits(),
            target.total_cost.to_bits(),
            "the target plan's own objective is the same number"
        );
        assert!(
            sched.final_cost <= sched.initial_cost,
            "the optimizer retargeted for a reason"
        );
    }

    #[test]
    fn advancing_to_completion_reaches_the_scheduled_end_state() {
        let (schema, _) = fixtures::paper_schema();
        let mut adv = advisor(&schema);
        let (current, target) = drifted(&mut adv);
        let mut planner = MigrationPlanner::new(&adv, &current, &target).expect("same path set");
        let sched = planner.schedule(MigrationEnvelope::default()).expect("ok");
        let mut waves = 0;
        while let Some(_steps) = planner.advance(MigrationEnvelope::default()).expect("ok") {
            waves += 1;
            assert!(waves <= sched.waves + 1, "advance must terminate");
        }
        assert!(planner.is_complete());
        assert_eq!(planner.current_cost().to_bits(), sched.final_cost.to_bits());
    }

    #[test]
    fn removing_a_path_cancels_its_unbuilt_builds() {
        let (schema, _) = fixtures::paper_schema();
        let mut adv = advisor(&schema);
        let (current, target) = drifted(&mut adv);
        let ids: Vec<PathId> = adv.path_ids().collect();
        let planner = MigrationPlanner::new(&adv, &current, &target).expect("same path set");
        let full = planner.schedule(MigrationEnvelope::default()).expect("ok");
        assert!(full.builds > 0, "the drifted target needs builds");
        // A path departs before anything was built: every target build
        // only it needed is cancelled, and the remaining schedule never
        // builds it.
        let mut planner = planner;
        let cancelled = planner.remove_path(ids[0]);
        assert!(cancelled > 0, "the departed path had scheduled builds");
        assert_eq!(planner.cancelled(), cancelled as u64);
        let sched = planner.schedule(MigrationEnvelope::default()).expect("ok");
        assert_eq!(sched.cancelled, cancelled as u64);
        assert!(
            sched.builds + cancelled <= full.builds + sched.drops,
            "cancelled builds never reappear"
        );
        assert_eq!(planner.remove_path(ids[0]), 0, "unknown handle is a no-op");
    }

    #[test]
    fn tight_space_envelope_drops_before_building() {
        let (schema, _) = fixtures::paper_schema();
        let mut adv = advisor(&schema);
        let (current, target) = drifted(&mut adv);
        let planner = MigrationPlanner::new(&adv, &current, &target).expect("same path set");
        let slack = planner.schedule(MigrationEnvelope::default()).expect("ok");
        // An envelope exactly as large as the bigger endpoint, plus the
        // largest single build: tight enough that keeping every old index
        // while building every new one cannot fit, so the repair must
        // interleave drops.
        let start: f64 = planner
            .indexes
            .values()
            .filter(|i| i.built)
            .map(|i| i.pages)
            .sum();
        let end: f64 = slack
            .steps
            .iter()
            .filter(|s| s.action == MigrationAction::Build)
            .map(|s| s.pages)
            .sum();
        let biggest = slack.steps.iter().map(|s| s.pages).fold(0.0f64, f64::max);
        let envelope = MigrationEnvelope {
            concurrent_builds: 2,
            space_pages: start.max(end) + biggest,
        };
        let sched = planner.schedule(envelope).expect("repairable");
        assert_eq!(sched.final_cost.to_bits(), slack.final_cost.to_bits());
        // And an envelope smaller than the end state is honestly hopeless.
        let hopeless = MigrationEnvelope {
            concurrent_builds: 2,
            space_pages: 1.0,
        };
        assert!(matches!(
            planner.schedule(hopeless),
            Err(MigrationError::SpaceExceeded { .. })
        ));
    }

    #[test]
    fn greedy_interim_cost_never_exceeds_naive() {
        let (schema, _) = fixtures::paper_schema();
        let mut adv = advisor(&schema);
        let (current, target) = drifted(&mut adv);
        let planner = MigrationPlanner::new(&adv, &current, &target).expect("same path set");
        let greedy = planner.schedule(MigrationEnvelope::default()).expect("ok");
        let naive = planner
            .naive_schedule(MigrationEnvelope::default())
            .expect("ok");
        assert_eq!(greedy.final_cost.to_bits(), naive.final_cost.to_bits());
        assert_eq!(greedy.builds, naive.builds, "same physical work");
        assert!(
            greedy.interim_cost <= naive.interim_cost,
            "ordering must not hurt: {} vs {}",
            greedy.interim_cost,
            naive.interim_cost
        );
    }
}
