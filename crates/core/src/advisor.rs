//! One-call advisor API over the whole pipeline.

use crate::select::{exhaustive, opt_ind_con, SelectionResult};
use crate::{pc, CostMatrix};
use oic_cost::{CostModel, CostParams, Org, PathCharacteristics};
use oic_schema::{Path, Schema};
use oic_workload::LoadDistribution;
use std::fmt;

/// High-level entry point: bind a schema, path, characteristics and
/// workload; get back the optimal index configuration with diagnostics.
///
/// ```
/// use oic_core::Advisor;
/// use oic_cost::{characteristics, CostParams};
/// use oic_schema::fixtures;
/// use oic_workload::example51_load;
///
/// let (schema, _) = fixtures::paper_schema();
/// let (path, chars) = characteristics::example51(&schema);
/// let ld = example51_load(&schema, &path);
/// let rec = Advisor::new(&schema, &path, &chars, &ld)
///     .with_params(CostParams::default())
///     .recommend();
/// assert!(rec.selection.cost <= rec.best_single_cost);
/// ```
pub struct Advisor<'a> {
    schema: &'a Schema,
    path: &'a Path,
    chars: &'a PathCharacteristics,
    ld: &'a LoadDistribution,
    params: CostParams,
    allow_no_index: bool,
    verify_exhaustively: bool,
}

/// The advisor's output.
#[derive(Debug, Clone)]
pub struct Recommendation {
    /// The branch-and-bound selection (optimal configuration + counters).
    pub selection: SelectionResult,
    /// Whole-path cost per organization, `(org, cost)` — the baselines the
    /// paper compares against in Example 5.1.
    pub whole_path: Vec<(Org, f64)>,
    /// The cheapest single-organization whole-path cost.
    pub best_single_cost: f64,
    /// `best_single_cost / selection.cost` — the paper reports 2.7 for
    /// Example 5.1 against the whole-path NIX.
    pub improvement_factor: f64,
    /// Estimated total index pages of the recommended configuration
    /// (unindexed subpaths contribute nothing).
    pub config_size_pages: f64,
    /// Rendered cost matrix (Figure 8 style).
    pub matrix_rendering: String,
    /// Human-readable optimal configuration.
    pub config_rendering: String,
}

impl<'a> Advisor<'a> {
    /// Binds the inputs with default physical parameters.
    pub fn new(
        schema: &'a Schema,
        path: &'a Path,
        chars: &'a PathCharacteristics,
        ld: &'a LoadDistribution,
    ) -> Self {
        Advisor {
            schema,
            path,
            chars,
            ld,
            params: CostParams::default(),
            allow_no_index: false,
            verify_exhaustively: false,
        }
    }

    /// Overrides the physical parameters.
    pub fn with_params(mut self, params: CostParams) -> Self {
        self.params = params;
        self
    }

    /// Enables the Section 6 no-index option.
    pub fn allow_no_index(mut self, yes: bool) -> Self {
        self.allow_no_index = yes;
        self
    }

    /// Cross-checks branch and bound against the exhaustive enumeration
    /// (debug builds assert equality).
    pub fn verify_exhaustively(mut self, yes: bool) -> Self {
        self.verify_exhaustively = yes;
        self
    }

    /// Runs the full pipeline.
    pub fn recommend(&self) -> Recommendation {
        let model = CostModel::new(self.schema, self.path, self.chars, self.params);
        let matrix = if self.allow_no_index {
            CostMatrix::build_with_no_index(&model, self.ld)
        } else {
            CostMatrix::build(&model, self.ld)
        };
        let selection = opt_ind_con(&matrix);
        if self.verify_exhaustively {
            let ex = exhaustive(&matrix);
            debug_assert!(
                (ex.cost - selection.cost).abs() < 1e-9,
                "branch and bound disagrees with exhaustive: {} vs {}",
                selection.cost,
                ex.cost
            );
        }
        let whole_path: Vec<(Org, f64)> = Org::ALL
            .iter()
            .map(|&org| (org, pc::whole_path_cost(&model, self.ld, org)))
            .collect();
        let best_single_cost = whole_path
            .iter()
            .map(|&(_, c)| c)
            .fold(f64::INFINITY, f64::min);
        let improvement_factor = best_single_cost / selection.cost;
        let config_size_pages = selection
            .best
            .pairs()
            .iter()
            .map(|&(sub, choice)| match choice {
                crate::Choice::Index(org) => model.size_pages(org, sub),
                crate::Choice::NoIndex => 0.0,
            })
            .sum();
        Recommendation {
            config_rendering: selection.best.render(self.schema, self.path),
            matrix_rendering: matrix.render(self.schema, self.path),
            selection,
            whole_path,
            best_single_cost,
            improvement_factor,
            config_size_pages,
        }
    }
}

impl fmt::Display for Recommendation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "cost matrix (row minima marked with *):")?;
        writeln!(f, "{}", self.matrix_rendering)?;
        writeln!(
            f,
            "optimal configuration: {} with processing cost {:.2}",
            self.config_rendering, self.selection.cost
        )?;
        for (org, c) in &self.whole_path {
            writeln!(f, "  whole-path {org}: {c:.2}")?;
        }
        writeln!(
            f,
            "improvement over best single index: {:.2}x; \
             evaluated {} of {} configurations ({} pruned)",
            self.improvement_factor,
            self.selection.evaluated,
            self.selection.candidate_space,
            self.selection.pruned
        )?;
        writeln!(
            f,
            "estimated index size: {:.0} pages",
            self.config_size_pages
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oic_cost::characteristics::example51;
    use oic_schema::fixtures;
    use oic_workload::example51_load;

    #[test]
    fn recommendation_is_self_consistent() {
        let (schema, _) = fixtures::paper_schema();
        let (path, chars) = example51(&schema);
        let ld = example51_load(&schema, &path);
        let rec = Advisor::new(&schema, &path, &chars, &ld)
            .verify_exhaustively(true)
            .recommend();
        assert!(rec.selection.cost > 0.0);
        assert!(rec.best_single_cost >= rec.selection.cost);
        assert!(rec.improvement_factor >= 1.0);
        assert!(rec.matrix_rendering.contains("NIX"));
        let display = rec.to_string();
        assert!(display.contains("optimal configuration"));
    }

    #[test]
    fn no_index_option_flows_through() {
        let (schema, _) = fixtures::paper_schema();
        let (path, chars) = example51(&schema);
        let ld = example51_load(&schema, &path);
        let a = Advisor::new(&schema, &path, &chars, &ld).recommend();
        let b = Advisor::new(&schema, &path, &chars, &ld)
            .allow_no_index(true)
            .recommend();
        assert!(b.selection.cost <= a.selection.cost + 1e-9);
    }
}
