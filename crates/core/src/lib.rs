//! Optimal index-configuration selection (Sections 4–5 of Choenni et al.,
//! ICDE 1994) — the paper's primary contribution.
//!
//! Pipeline:
//!
//! 1. [`pc::processing_cost`] — the processing cost of one subpath under one
//!    organization: searching costs for the derived workload plus
//!    maintenance, including the Section 4 cross-subpath deletion term
//!    `CMD` (Definition 4.2). Costs are additive across the subpaths of a
//!    configuration (Propositions 4.1/4.2).
//! 2. [`CostMatrix`] — the `Cost_Matrix` procedure: all `n(n+1)/2` subpaths
//!    × the three organizations (Figure 6's layout), with `Min_Cost` row
//!    minima.
//! 3. [`select::opt_ind_con`] — the `Opt_Ind_Con` procedure: branch-and-
//!    bound over the `2^(n-1)` recombinations, counting evaluated
//!    configurations; [`select::exhaustive`] is the brute-force baseline
//!    used for verification and for the complexity experiment.
//! 4. Section 6 extensions: a *no-index* choice per subpath
//!    ([`extensions::noindex`]) and a *multi-path* advisor
//!    ([`extensions::multipath`]).
//!
//! [`fig6`] reproduces the paper's hypothetical walkthrough matrix;
//! [`Advisor`] is the one-call user-facing API.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod advisor;
mod config;
pub mod extensions;
pub mod fig6;
mod matrix;
pub mod pc;
pub mod select;
pub mod trace;

pub use advisor::{Advisor, Recommendation};
pub use config::{Choice, IndexConfiguration};
pub use matrix::CostMatrix;
pub use select::{exhaustive, opt_ind_con, SelectionResult};
pub use trace::{opt_ind_con_traced, TraceEvent};
