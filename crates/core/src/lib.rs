//! Optimal index-configuration selection (Sections 4–5 of Choenni et al.,
//! ICDE 1994) — the paper's primary contribution.
//!
//! Pipeline:
//!
//! 1. [`pc::processing_cost`] — the processing cost of one subpath under one
//!    organization: searching costs for the derived workload plus
//!    maintenance, including the Section 4 cross-subpath deletion term
//!    `CMD` (Definition 4.2). Costs are additive across the subpaths of a
//!    configuration (Propositions 4.1/4.2).
//! 2. [`CostMatrix`] — the `Cost_Matrix` procedure: all `n(n+1)/2` subpaths
//!    × the three organizations (Figure 6's layout), with `Min_Cost` row
//!    minima.
//! 3. [`select::opt_ind_con`] — the `Opt_Ind_Con` procedure: branch-and-
//!    bound over the `2^(n-1)` recombinations, counting evaluated
//!    configurations; [`select::opt_ind_con_dp`] — the `O(n²·|Org|)`
//!    interval dynamic program computing the same optimum in polynomial
//!    time; [`select::frontier_dp`] — its two-objective generalization,
//!    carrying `(cost, size)` Pareto label sets through the same recurrence
//!    so selection can answer *"cheapest within a page budget"*;
//!    [`select::exhaustive`] is the brute-force baseline used for
//!    verification and for the complexity experiment.
//! 4. Section 6 extensions: a *no-index* choice per subpath
//!    ([`extensions::noindex`]) and a *multi-path* advisor
//!    ([`extensions::multipath`]).
//! 5. Workload scale: [`space::CandidateSpace`] interns physical subpath
//!    candidates across paths (refcounted, with class-keyed invalidation);
//!    [`workload_advisor::WorkloadAdvisor`] is an online engine selecting
//!    configurations for hundreds of paths at once, pricing each shared
//!    physical index's maintenance exactly once during selection, and
//!    re-optimizing incrementally as paths arrive/depart and statistics
//!    drift (`add_path`/`remove_path`/`update_stats`/`update_rates` +
//!    `reoptimize`).
//! 6. Online tuning: [`tuner::OnlineTuner`] closes the loop from *captured*
//!    traffic (`oic_workload::capture`) to the advisor — decayed rate
//!    estimation, a drift-triggered `reoptimize()`, and a
//!    [`workload_advisor::WorkloadAdvisor::what_if`] API pricing a
//!    hypothetical candidate without adopting it (DESIGN.md §5.16).
//! 7. Migration planning: [`migrate::MigrationPlanner`] turns a
//!    `(current, target)` plan pair into an ordered build/drop schedule
//!    under a concurrency-and-space envelope, every interim state priced
//!    bit-consistently with `price_plan` (DESIGN.md §5.18).
//!
//! [`fig6`] reproduces the paper's hypothetical walkthrough matrix;
//! [`Advisor`] is the one-call user-facing API.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod advisor;
mod config;
pub mod extensions;
pub mod fig6;
mod matrix;
pub mod migrate;
pub mod pc;
pub mod select;
mod shard;
pub mod space;
pub mod trace;
pub mod tuner;
pub mod workload_advisor;

pub use advisor::{Advisor, Recommendation};
pub use config::{Choice, IndexConfiguration};
pub use matrix::CostMatrix;
pub use migrate::{
    IndexKey, MigrationAction, MigrationEnvelope, MigrationError, MigrationPlanner,
    MigrationSchedule, MigrationStep,
};
pub use select::{
    candidate_space_size, exhaustive, exhaustive_frontier, frontier_dp, opt_ind_con,
    opt_ind_con_dp, prune_dominated, FrontierPoint, FrontierResult, SelectionResult,
};
pub use space::{CandidateId, CandidateSpace, CandidateStep};
pub use trace::{opt_ind_con_traced, TraceEvent};
pub use tuner::{OnlineTuner, TuningPolicy};
pub use workload_advisor::{
    BudgetedWorkloadPlan, PathId, PathOutcome, SharedIndexOutcome, WhatIfReport, WhatIfSubscriber,
    WorkloadAdvisor, WorkloadPlan,
};
