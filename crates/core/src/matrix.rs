//! The `Cost_Matrix` and `Min_Cost` procedures (Section 5).

use crate::{pc, Choice};
use oic_cost::{CostModel, Org};
use oic_schema::SubpathId;
use oic_workload::LoadDistribution;

/// The cost matrix: one row per subpath (`n(n+1)/2` rows, ordered by length
/// then start, exactly as the paper numbers `S_1 … S_{n(n+1)/2}`), one
/// column per organization, plus an optional no-index column (Section 6
/// extension, disabled by default).
///
/// Storage is dense: rows are addressed by [`SubpathId::rank`] and columns
/// by [`Org::index`], so the `pc`/`select` hot paths index flat arrays
/// instead of hashing `(SubpathId, Org)` keys. Row minima (`Min_Cost`) are
/// precomputed at build time.
///
/// Beside the cost plane the matrix carries a **size plane**: the estimated
/// footprint in pages of each `(subpath, organization)` cell (see
/// [`oic_cost::size`]). Model-built matrices fill it from the level
/// profiles; [`CostMatrix::from_values`] matrices carry zero sizes (pure
/// cost selection) unless built via [`CostMatrix::from_values_with_sizes`].
/// The two-objective [`frontier_dp`](crate::select::frontier_dp) optimizes
/// over both planes; scalar selectors read only the cost plane.
#[derive(Debug, Clone)]
pub struct CostMatrix {
    path_len: usize,
    rows: Vec<SubpathId>,
    /// `[MX, MIX, NIX]` per rank; `INFINITY` for ranks without a row.
    costs: Vec<[f64; 3]>,
    /// `[MX, MIX, NIX]` footprint in pages per rank; 0 for ranks without a
    /// row and for matrices built without sizes.
    sizes: Vec<[f64; 3]>,
    /// No-index column per rank, when built.
    no_index: Option<Vec<f64>>,
    /// Precomputed `Min_Cost` per rank.
    minima: Vec<(Choice, f64)>,
}

impl CostMatrix {
    /// Builds the matrix from the analytic model and a workload.
    pub fn build(model: &CostModel<'_>, ld: &LoadDistribution) -> Self {
        Self::build_inner(model, ld, false)
    }

    /// Builds the matrix including the no-index option per subpath.
    pub fn build_with_no_index(model: &CostModel<'_>, ld: &LoadDistribution) -> Self {
        Self::build_inner(model, ld, true)
    }

    fn build_inner(model: &CostModel<'_>, ld: &LoadDistribution, no_index: bool) -> Self {
        let path = model.path();
        let n = path.len();
        let rows = path.subpath_ids();
        let mut costs = vec![[f64::INFINITY; 3]; SubpathId::count(n)];
        let mut sizes = vec![[0.0; 3]; SubpathId::count(n)];
        let mut ni = no_index.then(|| vec![f64::INFINITY; SubpathId::count(n)]);
        for &sub in &rows {
            let r = sub.rank(n);
            for org in Org::ALL {
                costs[r][org.index()] = pc::processing_cost(model, ld, sub, Choice::Index(org));
                sizes[r][org.index()] = model.size_pages(org, sub);
            }
            if let Some(col) = ni.as_mut() {
                col[r] = pc::processing_cost(model, ld, sub, Choice::NoIndex);
            }
        }
        Self::finish(n, rows, costs, sizes, ni)
    }

    /// Builds a matrix from explicit values (used for the paper's Figure 6
    /// hypothetical matrix and for tests). `values` maps each subpath to its
    /// `[MX, MIX, NIX]` costs; every size is zero, so selection over such a
    /// matrix is pure cost minimization.
    pub fn from_values(path_len: usize, values: &[(SubpathId, [f64; 3])]) -> Self {
        let mut costs = vec![[f64::INFINITY; 3]; SubpathId::count(path_len)];
        let mut rows = Vec::new();
        for &(sub, v) in values {
            rows.push(sub);
            costs[sub.rank(path_len)] = v;
        }
        let sizes = vec![[0.0; 3]; SubpathId::count(path_len)];
        Self::finish(path_len, rows, costs, sizes, None)
    }

    /// [`CostMatrix::from_values`] with an explicit size plane: `values`
    /// maps each subpath to its `[MX, MIX, NIX]` costs and footprints.
    pub fn from_values_with_sizes(
        path_len: usize,
        values: &[(SubpathId, [f64; 3], [f64; 3])],
    ) -> Self {
        let mut costs = vec![[f64::INFINITY; 3]; SubpathId::count(path_len)];
        let mut sizes = vec![[0.0; 3]; SubpathId::count(path_len)];
        let mut rows = Vec::new();
        for &(sub, v, s) in values {
            rows.push(sub);
            costs[sub.rank(path_len)] = v;
            sizes[sub.rank(path_len)] = s;
        }
        Self::finish(path_len, rows, costs, sizes, None)
    }

    fn finish(
        path_len: usize,
        rows: Vec<SubpathId>,
        costs: Vec<[f64; 3]>,
        sizes: Vec<[f64; 3]>,
        no_index: Option<Vec<f64>>,
    ) -> Self {
        let minima = costs
            .iter()
            .enumerate()
            .map(|(r, cells)| {
                let mut best = (Choice::Index(Org::Mx), f64::INFINITY);
                for org in Org::ALL {
                    let c = cells[org.index()];
                    if c < best.1 {
                        best = (Choice::Index(org), c);
                    }
                }
                if let Some(col) = &no_index {
                    if col[r] < best.1 {
                        best = (Choice::NoIndex, col[r]);
                    }
                }
                best
            })
            .collect();
        CostMatrix {
            path_len,
            rows,
            costs,
            sizes,
            no_index,
            minima,
        }
    }

    /// Length of the underlying path.
    pub fn path_len(&self) -> usize {
        self.path_len
    }

    /// Rows in matrix order.
    pub fn rows(&self) -> &[SubpathId] {
        &self.rows
    }

    /// `a_{ij}` — the processing cost of subpath `sub` under `org`.
    pub fn cost(&self, sub: SubpathId, org: Org) -> f64 {
        self.costs[sub.rank(self.path_len)][org.index()]
    }

    /// The cost of `sub` under `choice` (no-index cells read the optional
    /// column; `INFINITY` when absent).
    pub fn choice_cost(&self, sub: SubpathId, choice: Choice) -> f64 {
        match choice {
            Choice::Index(org) => self.cost(sub, org),
            Choice::NoIndex => self.no_index_cost(sub).unwrap_or(f64::INFINITY),
        }
    }

    /// The estimated footprint in pages of indexing `sub` with `org` (zero
    /// for matrices built without a size plane).
    pub fn size(&self, sub: SubpathId, org: Org) -> f64 {
        self.sizes[sub.rank(self.path_len)][org.index()]
    }

    /// The footprint of `sub` under `choice`; allocating no index costs no
    /// pages.
    pub fn choice_size(&self, sub: SubpathId, choice: Choice) -> f64 {
        match choice {
            Choice::Index(org) => self.size(sub, org),
            Choice::NoIndex => 0.0,
        }
    }

    /// Total footprint of a configuration: the sum of its pieces' sizes.
    pub fn configuration_size(&self, config: &crate::IndexConfiguration) -> f64 {
        config
            .pairs()
            .iter()
            .map(|&(sub, choice)| self.choice_size(sub, choice))
            .sum()
    }

    /// The no-index cost for `sub`, if the column was built.
    pub fn no_index_cost(&self, sub: SubpathId) -> Option<f64> {
        self.no_index
            .as_ref()
            .map(|col| col[sub.rank(self.path_len)])
    }

    /// Whether the Section 6 no-index column was built.
    pub fn has_no_index(&self) -> bool {
        self.no_index.is_some()
    }

    /// `Min_Cost` — the best choice and cost for one row (the underlined
    /// entry in Figure 6/8). Considers the no-index column when present.
    /// Precomputed at build time; this is a flat array read.
    pub fn min_cost(&self, sub: SubpathId) -> (Choice, f64) {
        self.minima[sub.rank(self.path_len)]
    }

    /// Renders the matrix as an aligned text table (Figure 6/8 style), with
    /// the row minima marked by `*` (the paper underlines them).
    pub fn render(&self, schema: &oic_schema::Schema, path: &oic_schema::Path) -> String {
        let mut out = String::new();
        let name_w = self
            .rows
            .iter()
            .map(|&s| {
                path.subpath(schema, s)
                    .map(|p| p.display().len())
                    .unwrap_or(6)
            })
            .max()
            .unwrap_or(8)
            .max(8);
        out.push_str(&format!(
            "{:<w$}  {:>12} {:>12} {:>12}\n",
            "subpath",
            "MX",
            "MIX",
            "NIX",
            w = name_w
        ));
        for &sub in &self.rows {
            let name = path
                .subpath(schema, sub)
                .map(|p| p.display().to_string())
                .unwrap_or_else(|_| sub.to_string());
            let (best, _) = self.min_cost(sub);
            let cell = |org: Org| {
                let v = self.cost(sub, org);
                let mark = if Choice::Index(org) == best { "*" } else { " " };
                format!("{v:>11.2}{mark}")
            };
            out.push_str(&format!(
                "{:<w$}  {} {} {}\n",
                name,
                cell(Org::Mx),
                cell(Org::Mix),
                cell(Org::Nix),
                w = name_w
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oic_cost::characteristics::example51;
    use oic_cost::CostParams;
    use oic_schema::fixtures;
    use oic_workload::example51_load;

    fn sid(s: usize, e: usize) -> SubpathId {
        SubpathId { start: s, end: e }
    }

    #[test]
    fn build_covers_all_subpaths() {
        let (schema, _) = fixtures::paper_schema();
        let (path, chars) = example51(&schema);
        let ld = example51_load(&schema, &path);
        let model = CostModel::new(&schema, &path, &chars, CostParams::default());
        let m = CostMatrix::build(&model, &ld);
        assert_eq!(m.rows().len(), 10);
        assert_eq!(m.path_len(), 4);
        for &sub in m.rows() {
            let (_, best) = m.min_cost(sub);
            assert!(best.is_finite() && best > 0.0);
        }
        // Matrix-row ordering matches the paper's numbering.
        assert_eq!(m.rows()[0], sid(1, 1));
        assert_eq!(m.rows()[9], sid(1, 4));
    }

    #[test]
    fn from_values_and_min_cost() {
        let m = CostMatrix::from_values(
            2,
            &[
                (sid(1, 1), [3.0, 4.0, 6.0]),
                (sid(2, 2), [4.0, 4.0, 4.0]),
                (sid(1, 2), [9.0, 8.0, 7.0]),
            ],
        );
        let (c, v) = m.min_cost(sid(1, 1));
        assert_eq!(c, Choice::Index(Org::Mx));
        assert_eq!(v, 3.0);
        // Ties go to the first column (MX), like the paper's walkthrough
        // which picks MX for C2.A2's all-equal row.
        let (c, v) = m.min_cost(sid(2, 2));
        assert_eq!(c, Choice::Index(Org::Mx));
        assert_eq!(v, 4.0);
        let (c, _) = m.min_cost(sid(1, 2));
        assert_eq!(c, Choice::Index(Org::Nix));
    }

    #[test]
    fn no_index_column_participates_in_min() {
        let (schema, _) = fixtures::paper_schema();
        let (path, chars) = example51(&schema);
        // Zero workload: indexes still cost maintenance? No — zero load
        // means zero cost everywhere; check the column exists.
        let ld = example51_load(&schema, &path);
        let model = CostModel::new(&schema, &path, &chars, CostParams::default());
        let m = CostMatrix::build_with_no_index(&model, &ld);
        for &sub in m.rows() {
            assert!(m.no_index_cost(sub).is_some());
        }
    }

    #[test]
    fn built_matrices_carry_the_size_plane() {
        let (schema, _) = fixtures::paper_schema();
        let (path, chars) = example51(&schema);
        let ld = example51_load(&schema, &path);
        let model = CostModel::new(&schema, &path, &chars, CostParams::default());
        let m = CostMatrix::build(&model, &ld);
        for &sub in m.rows() {
            for org in Org::ALL {
                let s = m.size(sub, org);
                assert!(s.is_finite() && s > 0.0, "{sub} {org}: {s}");
                assert_eq!(s, model.size_pages(org, sub));
                assert_eq!(s, m.choice_size(sub, Choice::Index(org)));
            }
        }
        assert_eq!(m.choice_size(sid(1, 1), Choice::NoIndex), 0.0);
        // from_values matrices are size-free; the explicit constructor
        // round-trips, and configuration footprints sum the pieces.
        let v = CostMatrix::from_values(1, &[(sid(1, 1), [1.0, 2.0, 3.0])]);
        assert_eq!(v.size(sid(1, 1), Org::Nix), 0.0);
        let vs = CostMatrix::from_values_with_sizes(
            2,
            &[
                (sid(1, 1), [1.0, 2.0, 3.0], [10.0, 20.0, 30.0]),
                (sid(2, 2), [1.0, 2.0, 3.0], [11.0, 21.0, 31.0]),
                (sid(1, 2), [1.0, 2.0, 3.0], [40.0, 50.0, 60.0]),
            ],
        );
        assert_eq!(vs.size(sid(1, 2), Org::Mix), 50.0);
        let config = crate::IndexConfiguration::new(
            vec![
                (sid(1, 1), Choice::Index(Org::Mx)),
                (sid(2, 2), Choice::Index(Org::Nix)),
            ],
            2,
        )
        .unwrap();
        assert_eq!(vs.configuration_size(&config), 41.0);
    }

    #[test]
    fn render_marks_minima() {
        let m = CostMatrix::from_values(1, &[(sid(1, 1), [3.0, 4.0, 6.0])]);
        let (schema, _) = fixtures::paper_schema();
        let path = fixtures::paper_path_pe(&schema);
        let s = m.render(&schema, &path);
        assert!(s.contains("3.00*"));
        assert!(s.contains("MX"));
    }
}
