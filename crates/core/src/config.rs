//! Index configurations (Definition 4.1).

use oic_cost::Org;
use oic_schema::SubpathId;
use std::fmt;

/// What is allocated on a subpath: one of the paper's three organizations,
/// or nothing at all (the Section 6 “no index” extension).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Choice {
    /// An index of the given organization.
    Index(Org),
    /// No index; queries traverse the subpath by scanning (extension).
    NoIndex,
}

impl fmt::Display for Choice {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Choice::Index(o) => write!(f, "{o}"),
            Choice::NoIndex => write!(f, "—"),
        }
    }
}

/// An index configuration `IC_m(P)` of degree `m` (Definition 4.1): a
/// sequence of `(subpath, index)` pairs whose subpaths concatenate to the
/// full path — every class belongs to exactly one subpath.
#[derive(Debug, Clone, PartialEq)]
pub struct IndexConfiguration {
    pairs: Vec<(SubpathId, Choice)>,
}

impl IndexConfiguration {
    /// Builds a configuration, validating the concatenation property
    /// against a path of length `path_len`.
    pub fn new(pairs: Vec<(SubpathId, Choice)>, path_len: usize) -> Result<Self, String> {
        if pairs.is_empty() {
            return Err("a configuration needs at least one subpath".into());
        }
        let mut expect = 1usize;
        for (sub, _) in &pairs {
            if sub.start != expect {
                return Err(format!(
                    "subpath {sub} does not start at position {expect}; \
                     subpaths must concatenate to the full path"
                ));
            }
            if sub.end < sub.start {
                return Err(format!("subpath {sub} is inverted"));
            }
            expect = sub.end + 1;
        }
        if expect != path_len + 1 {
            return Err(format!(
                "configuration covers positions 1..{}, path has length {path_len}",
                expect - 1
            ));
        }
        Ok(IndexConfiguration { pairs })
    }

    /// Whole-path configuration of degree 1.
    pub fn whole_path(org: Org, path_len: usize) -> Self {
        IndexConfiguration {
            pairs: vec![(
                SubpathId {
                    start: 1,
                    end: path_len,
                },
                Choice::Index(org),
            )],
        }
    }

    /// The `(subpath, choice)` pairs in path order.
    pub fn pairs(&self) -> &[(SubpathId, Choice)] {
        &self.pairs
    }

    /// Degree `m` — the number of subpaths.
    pub fn degree(&self) -> usize {
        self.pairs.len()
    }

    /// The split points: ending positions of all but the last subpath.
    pub fn cut_points(&self) -> Vec<usize> {
        self.pairs[..self.pairs.len() - 1]
            .iter()
            .map(|(s, _)| s.end)
            .collect()
    }

    /// Renders against a schema/path for human-readable reports, e.g.
    /// `{(Person.owns.man, NIX), (Company.divs.name, MX)}`.
    pub fn render(&self, schema: &oic_schema::Schema, path: &oic_schema::Path) -> String {
        let parts: Vec<String> = self
            .pairs
            .iter()
            .map(|(sub, c)| {
                let sp = path
                    .subpath(schema, *sub)
                    .map(|p| p.display().to_string())
                    .unwrap_or_else(|_| sub.to_string());
                format!("({sp}, {c})")
            })
            .collect();
        format!("{{{}}}", parts.join(", "))
    }
}

impl fmt::Display for IndexConfiguration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let parts: Vec<String> = self
            .pairs
            .iter()
            .map(|(s, c)| format!("({s}, {c})"))
            .collect();
        write!(f, "{{{}}}", parts.join(", "))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sid(s: usize, e: usize) -> SubpathId {
        SubpathId { start: s, end: e }
    }

    #[test]
    fn valid_configuration() {
        let c = IndexConfiguration::new(
            vec![
                (sid(1, 2), Choice::Index(Org::Nix)),
                (sid(3, 4), Choice::Index(Org::Mx)),
            ],
            4,
        )
        .unwrap();
        assert_eq!(c.degree(), 2);
        assert_eq!(c.cut_points(), vec![2]);
    }

    #[test]
    fn gaps_and_overlaps_rejected() {
        assert!(IndexConfiguration::new(
            vec![
                (sid(1, 2), Choice::Index(Org::Mx)),
                (sid(4, 4), Choice::Index(Org::Mx)),
            ],
            4
        )
        .is_err());
        assert!(IndexConfiguration::new(
            vec![
                (sid(1, 3), Choice::Index(Org::Mx)),
                (sid(3, 4), Choice::Index(Org::Mx)),
            ],
            4
        )
        .is_err());
        assert!(IndexConfiguration::new(vec![(sid(1, 3), Choice::Index(Org::Mx))], 4).is_err());
        assert!(IndexConfiguration::new(vec![], 4).is_err());
    }

    #[test]
    fn whole_path_constructor() {
        let c = IndexConfiguration::whole_path(Org::Nix, 5);
        assert_eq!(c.degree(), 1);
        assert_eq!(c.pairs()[0].0, sid(1, 5));
        assert!(c.cut_points().is_empty());
    }

    #[test]
    fn display_renders_pairs() {
        let c = IndexConfiguration::whole_path(Org::Nix, 2);
        assert_eq!(c.to_string(), "{(S1,2, NIX)}");
    }

    #[test]
    fn render_with_schema() {
        let (schema, _) = oic_schema::fixtures::paper_schema();
        let path = oic_schema::fixtures::paper_path_pexa(&schema);
        let c = IndexConfiguration::new(
            vec![
                (sid(1, 2), Choice::Index(Org::Nix)),
                (sid(3, 4), Choice::Index(Org::Mx)),
            ],
            4,
        )
        .unwrap();
        let r = c.render(&schema, &path);
        assert!(r.contains("Person.owns.man"));
        assert!(r.contains("Company.divs.name"));
        assert!(r.contains("NIX") && r.contains("MX"));
    }
}
