//! Candidate-sharing component index: an incrementally maintained
//! union-find over the advisor's live paths, keyed by shared
//! [`CandidateId`]s.
//!
//! Two paths land in the same component iff they are connected by a chain
//! of shared physical candidates. Paths in different components share no
//! physical index, so the advisor's coordinate descent decomposes exactly
//! across components (DESIGN.md §5.15): each component optimizes
//! independently — and in parallel — with no speculation at all.

use crate::CandidateId;
use std::collections::HashMap;

/// Incremental union-find over paths keyed by shared candidates.
///
/// Paths are identified by their raw [`PathId`](crate::PathId) value
/// (`u32`, monotonically assigned, never reused), so plain `Vec`s indexed
/// by raw id back the parent/size arrays. Path additions union
/// incrementally (one `find` per candidate). Removals cannot split a
/// union-find incrementally, so they mark the structure dirty and the next
/// [`ShardIndex::components`] call rebuilds from the live set — required
/// anyway because [`CandidateSpace`](crate::CandidateSpace) recycles the
/// ids of freed candidates, which would otherwise alias stale owners.
#[derive(Debug, Default)]
pub(crate) struct ShardIndex {
    /// Union-find parent per raw path id.
    parent: Vec<u32>,
    /// Component size per root (indexed by raw path id; meaningful at
    /// roots only).
    size: Vec<u32>,
    /// First live path seen holding each candidate; unions route through
    /// it. Stale after a removal (`dirty`) until the next rebuild.
    cand_owner: HashMap<CandidateId, u32>,
    /// Set on removal: incremental state may be stale; the next
    /// [`ShardIndex::components`] call rebuilds from the live set.
    dirty: bool,
}

impl ShardIndex {
    /// New, empty index.
    pub(crate) fn new() -> Self {
        Self::default()
    }

    /// Records a freshly added path and unions it with every live path
    /// sharing one of its candidates. A no-op while dirty: the pending
    /// rebuild re-derives everything from the live set.
    pub(crate) fn add_path(&mut self, raw: u32, cands: &[CandidateId]) {
        if self.dirty {
            return;
        }
        self.grow(raw);
        self.link(raw, cands);
    }

    /// Marks the index stale after a path departure. The union-find and
    /// the candidate-owner table are rebuilt lazily by the next
    /// [`ShardIndex::components`] call; until then additions are no-ops.
    pub(crate) fn remove_path(&mut self) {
        self.dirty = true;
    }

    /// The candidate-sharing connected components of `live` (one `(raw
    /// path id, interned candidates)` entry per live path, in advisor
    /// storage order). Returns indices into `live`, grouped by component
    /// in first-seen-root order — i.e. components are ordered by their
    /// smallest member index and members ascend within each — which is
    /// what makes the sharded descent deterministic.
    pub(crate) fn components(&mut self, live: &[(u32, &[CandidateId])]) -> Vec<Vec<usize>> {
        if self.dirty {
            self.rebuild(live);
        }
        let mut groups: Vec<Vec<usize>> = Vec::new();
        let mut by_root: HashMap<u32, usize> = HashMap::new();
        for (idx, &(raw, _)) in live.iter().enumerate() {
            let root = self.find(raw);
            let g = *by_root.entry(root).or_insert_with(|| {
                groups.push(Vec::new());
                groups.len() - 1
            });
            groups[g].push(idx);
        }
        groups
    }

    /// Full rebuild from the live set: fresh forest, fresh candidate
    /// owners. Handles departures *and* candidate-id recycling in one
    /// sweep (the "split audit").
    fn rebuild(&mut self, live: &[(u32, &[CandidateId])]) {
        let n = live
            .iter()
            .map(|&(raw, _)| raw as usize + 1)
            .max()
            .unwrap_or(0);
        self.parent = (0..n as u32).collect();
        self.size = vec![1; n];
        self.cand_owner.clear();
        self.dirty = false;
        for &(raw, cands) in live {
            self.link(raw, cands);
        }
    }

    /// Unions `raw` with the recorded owner of each candidate, claiming
    /// ownership of candidates seen for the first time.
    fn link(&mut self, raw: u32, cands: &[CandidateId]) {
        for &cand in cands {
            match self.cand_owner.get(&cand) {
                Some(&owner) => self.union(raw, owner),
                None => {
                    self.cand_owner.insert(cand, raw);
                }
            }
        }
    }

    /// Grows the forest to cover raw id `raw` (fresh singletons).
    fn grow(&mut self, raw: u32) {
        let need = raw as usize + 1;
        while self.parent.len() < need {
            self.parent.push(self.parent.len() as u32);
            self.size.push(1);
        }
    }

    /// Root of `x` with path halving.
    fn find(&mut self, mut x: u32) -> u32 {
        while self.parent[x as usize] != x {
            let grand = self.parent[self.parent[x as usize] as usize];
            self.parent[x as usize] = grand;
            x = grand;
        }
        x
    }

    /// Union by size; ties keep the smaller root (determinism).
    fn union(&mut self, a: u32, b: u32) {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra == rb {
            return;
        }
        let (big, small) = match self.size[ra as usize].cmp(&self.size[rb as usize]) {
            std::cmp::Ordering::Greater => (ra, rb),
            std::cmp::Ordering::Less => (rb, ra),
            std::cmp::Ordering::Equal => (ra.min(rb), ra.max(rb)),
        };
        self.parent[small as usize] = big;
        self.size[big as usize] += self.size[small as usize];
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn c(i: u32) -> CandidateId {
        CandidateId(i)
    }

    #[test]
    fn additions_merge_on_shared_candidates() {
        let mut idx = ShardIndex::new();
        idx.add_path(0, &[c(0), c(1)]);
        idx.add_path(1, &[c(2)]);
        let live: Vec<(u32, Vec<CandidateId>)> = vec![(0, vec![c(0), c(1)]), (1, vec![c(2)])];
        let borrowed: Vec<(u32, &[CandidateId])> =
            live.iter().map(|(r, v)| (*r, v.as_slice())).collect();
        assert_eq!(idx.components(&borrowed), vec![vec![0], vec![1]]);

        // Path 2 bridges the two: candidate 1 from path 0, candidate 2
        // from path 1 — one component, ordered by smallest member.
        idx.add_path(2, &[c(1), c(2)]);
        let live: Vec<(u32, Vec<CandidateId>)> = vec![
            (0, vec![c(0), c(1)]),
            (1, vec![c(2)]),
            (2, vec![c(1), c(2)]),
        ];
        let borrowed: Vec<(u32, &[CandidateId])> =
            live.iter().map(|(r, v)| (*r, v.as_slice())).collect();
        assert_eq!(idx.components(&borrowed), vec![vec![0, 1, 2]]);
    }

    #[test]
    fn components_order_by_first_seen_member() {
        let mut idx = ShardIndex::new();
        idx.add_path(0, &[c(0)]);
        idx.add_path(1, &[c(1)]);
        idx.add_path(2, &[c(0)]);
        idx.add_path(3, &[c(1)]);
        let live: Vec<(u32, Vec<CandidateId>)> = vec![
            (0, vec![c(0)]),
            (1, vec![c(1)]),
            (2, vec![c(0)]),
            (3, vec![c(1)]),
        ];
        let borrowed: Vec<(u32, &[CandidateId])> =
            live.iter().map(|(r, v)| (*r, v.as_slice())).collect();
        assert_eq!(idx.components(&borrowed), vec![vec![0, 2], vec![1, 3]]);
    }

    #[test]
    fn removal_splits_on_rebuild() {
        let mut idx = ShardIndex::new();
        // Path 1 is the only bridge between 0 and 2.
        idx.add_path(0, &[c(0)]);
        idx.add_path(1, &[c(0), c(1)]);
        idx.add_path(2, &[c(1)]);
        let live: Vec<(u32, Vec<CandidateId>)> =
            vec![(0, vec![c(0)]), (1, vec![c(0), c(1)]), (2, vec![c(1)])];
        let borrowed: Vec<(u32, &[CandidateId])> =
            live.iter().map(|(r, v)| (*r, v.as_slice())).collect();
        assert_eq!(idx.components(&borrowed), vec![vec![0, 1, 2]]);

        // Dropping the bridge splits the component — the rebuild audit.
        idx.remove_path();
        let live: Vec<(u32, Vec<CandidateId>)> = vec![(0, vec![c(0)]), (2, vec![c(1)])];
        let borrowed: Vec<(u32, &[CandidateId])> =
            live.iter().map(|(r, v)| (*r, v.as_slice())).collect();
        assert_eq!(idx.components(&borrowed), vec![vec![0], vec![1]]);
    }

    #[test]
    fn recycled_candidate_ids_do_not_alias_after_rebuild() {
        let mut idx = ShardIndex::new();
        idx.add_path(0, &[c(0)]);
        idx.add_path(1, &[c(1)]);
        // Path 0 departs; the space recycles candidate id 0 for a brand-new
        // physical candidate interned by path 2. Stale incremental state
        // would union 2 with the dead path 0; the rebuild must not.
        idx.remove_path();
        idx.add_path(2, &[c(0)]); // no-op while dirty
        let live: Vec<(u32, Vec<CandidateId>)> = vec![(1, vec![c(1)]), (2, vec![c(0)])];
        let borrowed: Vec<(u32, &[CandidateId])> =
            live.iter().map(|(r, v)| (*r, v.as_slice())).collect();
        assert_eq!(idx.components(&borrowed), vec![vec![0], vec![1]]);

        // Incremental additions resume after the rebuild cleared `dirty`.
        idx.add_path(3, &[c(0)]);
        let live: Vec<(u32, Vec<CandidateId>)> =
            vec![(1, vec![c(1)]), (2, vec![c(0)]), (3, vec![c(0)])];
        let borrowed: Vec<(u32, &[CandidateId])> =
            live.iter().map(|(r, v)| (*r, v.as_slice())).collect();
        assert_eq!(idx.components(&borrowed), vec![vec![0], vec![1, 2]]);
    }

    #[test]
    fn empty_live_set_has_no_components() {
        let mut idx = ShardIndex::new();
        idx.remove_path();
        assert_eq!(idx.components(&[]), Vec::<Vec<usize>>::new());
    }
}
