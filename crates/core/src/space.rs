//! The shared candidate space: an interned, arena-backed catalog of the
//! *physical* subpath candidates a workload exposes.
//!
//! Two subpaths of different paths that traverse the same `(class,
//! attribute)` step sequence *in the same role* (embedded vs terminal —
//! see [`CandidateSpace`]) denote the same physical index opportunity — an
//! index built for one serves the other. The space interns each distinct
//! identity once, hands out dense [`CandidateId`]s (plain `u32` ranks into
//! the arena), and memoizes the maintenance price of each `(candidate,
//! organization)` pair so a physical index shared by many paths is priced
//! exactly once, no matter how many selections consult it.

use oic_cost::Org;
use oic_schema::{AttrId, ClassId, Path, SubpathId};
use std::collections::HashMap;

/// Dense identifier of an interned physical candidate. Ids are assigned in
/// first-seen order and index flat arrays directly.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct CandidateId(pub u32);

impl CandidateId {
    /// The dense index backing this id.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// One step of a physical candidate: the hierarchy root class and the
/// interned attribute traversed at that position.
pub type CandidateStep = (ClassId, AttrId);

/// Interned arena of physical subpath candidates shared across paths.
///
/// Candidate identity is the step sequence **plus** whether the subpath is
/// *embedded* (followed by more steps in its path) or *terminal*. The same
/// steps price maintenance differently in the two roles: an embedded
/// subpath absorbs the Section 4 boundary-deletion (`CMD`) traffic of the
/// class that follows it and clamps its key domain by that class's
/// population, while a terminal subpath has no successor. A path may
/// legally end on a reference attribute, so one path's terminal subpath
/// can spell the same steps as another path's embedded one — those are
/// distinct physical pricing contexts and get distinct ids.
#[derive(Debug, Default)]
pub struct CandidateSpace {
    /// Arena: the `(steps, embedded)` identity of each candidate.
    sigs: Vec<(Box<[CandidateStep]>, bool)>,
    /// Reverse lookup used only at interning time.
    lookup: HashMap<(Box<[CandidateStep]>, bool), CandidateId>,
    /// Memoized maintenance price per `(candidate, org)`; `NaN` = unpriced.
    maint: Vec<[f64; 3]>,
    /// How many times a maintenance price was actually computed (not read
    /// from the memo) — the never-price-twice witness.
    pricings: u64,
}

impl CandidateSpace {
    /// New, empty space.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns one step sequence in its role (`embedded` = more steps
    /// follow in the owning path), returning its dense id (the existing id
    /// if this `(steps, embedded)` pair was seen before).
    pub fn intern(&mut self, steps: &[CandidateStep], embedded: bool) -> CandidateId {
        use std::collections::hash_map::Entry;
        match self.lookup.entry((Box::from(steps), embedded)) {
            Entry::Occupied(e) => *e.get(),
            Entry::Vacant(e) => {
                let id = CandidateId(self.sigs.len() as u32);
                self.sigs.push((e.key().0.clone(), embedded));
                self.maint.push([f64::NAN; 3]);
                *e.insert(id)
            }
        }
    }

    /// Interns every subpath of `path`, returning one candidate id per
    /// subpath, indexed by [`SubpathId::rank`]. Subpaths ending before the
    /// path's last position intern as embedded.
    pub fn intern_path(&mut self, path: &Path) -> Vec<CandidateId> {
        let n = path.len();
        (0..SubpathId::count(n))
            .map(|r| {
                let sub = SubpathId::from_rank(n, r);
                self.intern(&path.step_keys(sub), sub.end < n)
            })
            .collect()
    }

    /// Number of distinct candidates interned so far.
    pub fn len(&self) -> usize {
        self.sigs.len()
    }

    /// Whether the space is empty.
    pub fn is_empty(&self) -> bool {
        self.sigs.is_empty()
    }

    /// The step sequence of a candidate.
    pub fn steps(&self, id: CandidateId) -> &[CandidateStep] {
        &self.sigs[id.index()].0
    }

    /// Whether a candidate is embedded (more steps follow it in its owning
    /// paths) or terminal.
    pub fn is_embedded(&self, id: CandidateId) -> bool {
        self.sigs[id.index()].1
    }

    /// The memoized maintenance price of `(id, org)`, computing it with
    /// `price` on first request only. Subsequent calls — from the same path
    /// or any other path sharing the candidate — return the memo.
    pub fn maintenance_cost(
        &mut self,
        id: CandidateId,
        org: Org,
        price: impl FnOnce() -> f64,
    ) -> f64 {
        let cell = &mut self.maint[id.index()][org.index()];
        if cell.is_nan() {
            *cell = price();
            self.pricings += 1;
        }
        *cell
    }

    /// The already-memoized maintenance price, if `(id, org)` was priced.
    pub fn priced_maintenance(&self, id: CandidateId, org: Org) -> Option<f64> {
        let v = self.maint[id.index()][org.index()];
        (!v.is_nan()).then_some(v)
    }

    /// Number of maintenance prices actually computed. Equals the number of
    /// distinct `(candidate, org)` pairs ever priced — by construction a
    /// shared physical subpath is never priced twice.
    pub fn maintenance_pricings(&self) -> u64 {
        self.pricings
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oic_schema::fixtures;

    #[test]
    fn interning_is_idempotent_and_dense() {
        let (schema, _) = fixtures::paper_schema();
        let pexa = fixtures::paper_path_pexa(&schema);
        let mut space = CandidateSpace::new();
        let a = space.intern_path(&pexa);
        assert_eq!(a.len(), SubpathId::count(4));
        assert_eq!(space.len(), SubpathId::count(4), "all subpaths distinct");
        // Re-interning the same path adds nothing.
        let b = space.intern_path(&pexa);
        assert_eq!(a, b);
        assert_eq!(space.len(), SubpathId::count(4));
        // Ids are dense, first-seen ordered.
        assert_eq!(a[0], CandidateId(0));
        assert!(a.iter().all(|id| id.index() < space.len()));
    }

    #[test]
    fn overlapping_paths_share_prefix_candidates() {
        let (schema, _) = fixtures::paper_schema();
        let pexa = fixtures::paper_path_pexa(&schema);
        let pe = fixtures::paper_path_pe(&schema);
        let mut space = CandidateSpace::new();
        let a = space.intern_path(&pexa);
        let before = space.len();
        let b = space.intern_path(&pe);
        // Pe = Per.owns.man.name shares Per.owns, man and Per.owns.man with
        // Pexa; its other three subpaths (ending in Company.name) are new.
        let shared = b.iter().filter(|id| id.index() < before).count();
        assert_eq!(shared, 3, "S1,1 S2,2 S1,2 are physically shared");
        let r11 = SubpathId { start: 1, end: 1 }.rank(3);
        assert_eq!(a[SubpathId { start: 1, end: 1 }.rank(4)], b[r11]);
    }

    #[test]
    fn terminal_and_embedded_roles_are_distinct_candidates() {
        // Person.owns is a complete path (paths may end on a reference
        // attribute) *and* the first subpath of Person.owns.man.name. The
        // two roles price maintenance differently — the embedded one pays
        // the boundary CMD of Vehicle deletions — so they must not share a
        // memo slot.
        let (schema, _) = fixtures::paper_schema();
        let owns = Path::parse(&schema, "Person", &["owns"]).unwrap();
        let pe = fixtures::paper_path_pe(&schema);
        let mut space = CandidateSpace::new();
        let terminal = space.intern_path(&owns)[0];
        let ids = space.intern_path(&pe);
        let embedded = ids[SubpathId { start: 1, end: 1 }.rank(3)];
        assert_eq!(space.steps(terminal), space.steps(embedded), "same steps");
        assert_ne!(terminal, embedded, "different roles, different identity");
        assert!(!space.is_embedded(terminal));
        assert!(space.is_embedded(embedded));
        // Each role keeps its own maintenance memo.
        assert_eq!(space.maintenance_cost(terminal, Org::Mx, || 1.0), 1.0);
        assert_eq!(space.maintenance_cost(embedded, Org::Mx, || 2.0), 2.0);
        assert_eq!(space.priced_maintenance(terminal, Org::Mx), Some(1.0));
        assert_eq!(space.priced_maintenance(embedded, Org::Mx), Some(2.0));
    }

    #[test]
    fn maintenance_priced_once() {
        let (schema, _) = fixtures::paper_schema();
        let pexa = fixtures::paper_path_pexa(&schema);
        let mut space = CandidateSpace::new();
        let ids = space.intern_path(&pexa);
        let id = ids[0];
        let mut calls = 0;
        let first = space.maintenance_cost(id, Org::Mx, || {
            calls += 1;
            42.0
        });
        let second = space.maintenance_cost(id, Org::Mx, || {
            calls += 1;
            99.0
        });
        assert_eq!(first, 42.0);
        assert_eq!(second, 42.0, "memo wins; the second closure never runs");
        assert_eq!(calls, 1);
        assert_eq!(space.maintenance_pricings(), 1);
        assert_eq!(space.priced_maintenance(id, Org::Mx), Some(42.0));
        assert_eq!(space.priced_maintenance(id, Org::Nix), None);
    }
}
