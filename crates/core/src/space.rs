//! The shared candidate space: an interned, refcounted, arena-backed
//! catalog of the *physical* subpath candidates a workload exposes.
//!
//! Two subpaths of different paths that traverse the same `(class,
//! attribute)` step sequence *in the same role* (embedded vs terminal —
//! see [`CandidateSpace`]) denote the same physical index opportunity — an
//! index built for one serves the other. The space interns each distinct
//! identity once, hands out dense [`CandidateId`]s (plain `u32` ranks into
//! the arena), and memoizes the maintenance price of each `(candidate,
//! organization)` pair so a physical index shared by many paths is priced
//! exactly once per epoch, no matter how many selections consult it.
//!
//! Three epoch-mutation facilities support the online
//! [`WorkloadAdvisor`](crate::WorkloadAdvisor):
//!
//! * **Reference counting** — [`CandidateSpace::intern_path`] acquires one
//!   reference per owning path and [`CandidateSpace::release_path`] drops
//!   them; when the last owner departs the candidate is freed (its memo
//!   cleared, its id recycled), so the space tracks the *live* workload
//!   rather than everything ever seen.
//! * **Class invalidation** — each candidate records the dependency class
//!   set of its maintenance price (computed by
//!   [`oic_cost::invalidation::maintenance_dependencies`]: the step
//!   hierarchies plus, for embedded candidates, the successor hierarchy).
//!   [`CandidateSpace::invalidate_class`] clears exactly the memo rows that
//!   a statistics or update-rate change for one class can move.
//! * **Pricing telemetry** — [`CandidateSpace::maintenance_pricings`]
//!   counts actual computations (memo misses), the never-price-twice
//!   witness the workload tests and benches audit.
//!
//! The priced-once invariant, pinned:
//!
//! ```
//! use oic_core::CandidateSpace;
//! use oic_cost::Org;
//! use oic_schema::fixtures;
//!
//! let (schema, _) = fixtures::paper_schema();
//! let pexa = fixtures::paper_path_pexa(&schema);
//! let mut space = CandidateSpace::new();
//! let ids = space.intern_path(&schema, &pexa);
//! // Two requests for the same (candidate, organization): the second is a
//! // memo hit — the pricing closure never runs again.
//! let first = space.maintenance_cost(ids[0], Org::Mx, || 42.0);
//! let second = space.maintenance_cost(ids[0], Org::Mx, || unreachable!());
//! assert_eq!((first, second), (42.0, 42.0));
//! assert_eq!(space.maintenance_pricings(), 1);
//! ```

use oic_cost::Org;
use oic_schema::{AttrId, ClassId, Path, Schema, SubpathId};
use std::collections::HashMap;

/// Dense identifier of an interned physical candidate. Ids index flat
/// arrays directly; the id of a freed candidate (refcount zero) is recycled
/// for the next fresh interning, so ids stay dense under churn. An id is
/// stable for as long as any path holds a reference to its candidate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct CandidateId(pub u32);

impl CandidateId {
    /// The dense index backing this id.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// One step of a physical candidate: the hierarchy root class and the
/// interned attribute traversed at that position.
pub type CandidateStep = (ClassId, AttrId);

/// One arena slot: a candidate's identity, dependency set, and refcount.
#[derive(Debug)]
struct Slot {
    /// The `(steps, embedded)` identity of the candidate.
    steps: Box<[CandidateStep]>,
    /// Whether more steps follow the candidate in its owning paths.
    embedded: bool,
    /// Classes whose statistics or update rates its maintenance price
    /// reads (sorted, deduplicated — see `oic_cost::invalidation`).
    deps: Box<[ClassId]>,
    /// Number of owning path-subpath references; 0 = free slot.
    refs: u32,
}

/// Interned arena of physical subpath candidates shared across paths.
///
/// Candidate identity is the step sequence **plus** whether the subpath is
/// *embedded* (followed by more steps in its path) or *terminal*. The same
/// steps price maintenance differently in the two roles: an embedded
/// subpath absorbs the Section 4 boundary-deletion (`CMD`) traffic of the
/// class that follows it and clamps its key domain by that class's
/// population, while a terminal subpath has no successor. A path may
/// legally end on a reference attribute, so one path's terminal subpath
/// can spell the same steps as another path's embedded one — those are
/// distinct physical pricing contexts and get distinct ids.
#[derive(Debug, Default)]
pub struct CandidateSpace {
    /// Arena slots; freed slots stay in place (refs = 0) until recycled.
    slots: Vec<Slot>,
    /// Reverse lookup used at interning time; freed candidates are removed.
    lookup: HashMap<(Box<[CandidateStep]>, bool), CandidateId>,
    /// Memoized maintenance price per `(candidate, org)`; `NaN` = unpriced.
    maint: Vec<[f64; 3]>,
    /// Memoized footprint in pages per `(candidate, org)`; `NaN` =
    /// unpriced. Sizes share the maintenance dependency set
    /// (`oic_cost::invalidation::size_dependencies`), so
    /// [`CandidateSpace::invalidate_class`] clears both planes together —
    /// drift invalidation comes for free.
    size: Vec<[f64; 3]>,
    /// Recycled ids of freed slots.
    free: Vec<CandidateId>,
    /// How many times a maintenance price was actually computed (not read
    /// from the memo) — the never-price-twice witness. Monotone across
    /// epochs; invalidation makes re-pricing legitimate, so compare deltas
    /// per epoch, not absolutes, in evolving workloads.
    pricings: u64,
    /// How many times a size was actually computed — the count-once witness
    /// for the footprint plane.
    size_pricings: u64,
}

impl CandidateSpace {
    /// New, empty space.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns one step sequence in its role (`embedded` = more steps
    /// follow in the owning path) with its maintenance dependency class
    /// set, **acquiring one reference**: the existing id if this `(steps,
    /// embedded)` pair is live, a recycled or fresh id otherwise.
    pub fn intern(
        &mut self,
        steps: &[CandidateStep],
        embedded: bool,
        deps: impl FnOnce() -> Vec<ClassId>,
    ) -> CandidateId {
        use std::collections::hash_map::Entry;
        match self.lookup.entry((Box::from(steps), embedded)) {
            Entry::Occupied(e) => {
                let id = *e.get();
                self.slots[id.index()].refs += 1;
                id
            }
            Entry::Vacant(e) => {
                let slot = Slot {
                    steps: e.key().0.clone(),
                    embedded,
                    deps: deps().into(),
                    refs: 1,
                };
                let id = match self.free.pop() {
                    Some(id) => {
                        self.slots[id.index()] = slot;
                        self.maint[id.index()] = [f64::NAN; 3];
                        self.size[id.index()] = [f64::NAN; 3];
                        id
                    }
                    None => {
                        let id = CandidateId(self.slots.len() as u32);
                        self.slots.push(slot);
                        self.maint.push([f64::NAN; 3]);
                        self.size.push([f64::NAN; 3]);
                        id
                    }
                };
                *e.insert(id)
            }
        }
    }

    /// Interns every subpath of `path`, returning one candidate id per
    /// subpath, indexed by [`SubpathId::rank`], and acquiring one reference
    /// each (a path never exposes the same candidate twice: a class appears
    /// at most once along a path). Subpaths ending before the path's last
    /// position intern as embedded. Pass the resulting ids back to
    /// [`CandidateSpace::release_path`] when the path departs.
    pub fn intern_path(&mut self, schema: &Schema, path: &Path) -> Vec<CandidateId> {
        let n = path.len();
        (0..SubpathId::count(n))
            .map(|r| {
                let sub = SubpathId::from_rank(n, r);
                self.intern(&path.step_keys(sub), sub.end < n, || {
                    oic_cost::invalidation::maintenance_dependencies(schema, path, sub)
                })
            })
            .collect()
    }

    /// [`CandidateSpace::intern_path`] under a mined admission verdict:
    /// only ranks with `admitted[rank] == true` are interned (in the same
    /// rank order, so the interning history — and thus every recycled id —
    /// matches `intern_path` bitwise when everything is admitted). A
    /// mined-out rank holds no reference and occupies no slot: the space,
    /// the maintenance memo and the shard index never see it.
    pub fn intern_path_admitted(
        &mut self,
        schema: &Schema,
        path: &Path,
        admitted: &[bool],
    ) -> Vec<Option<CandidateId>> {
        let n = path.len();
        debug_assert_eq!(admitted.len(), SubpathId::count(n));
        (0..SubpathId::count(n))
            .map(|r| {
                if !admitted[r] {
                    return None;
                }
                let sub = SubpathId::from_rank(n, r);
                Some(self.intern(&path.step_keys(sub), sub.end < n, || {
                    oic_cost::invalidation::maintenance_dependencies(schema, path, sub)
                }))
            })
            .collect()
    }

    /// Releases one reference per id (the inverse of
    /// [`CandidateSpace::intern_path`]). A candidate whose last reference
    /// drops is freed: its memo is cleared, its identity leaves the lookup,
    /// and its id is recycled for future internings.
    ///
    /// # Panics
    /// Panics if an id is not live (double release).
    pub fn release_path(&mut self, ids: &[CandidateId]) {
        for &id in ids {
            let slot = &mut self.slots[id.index()];
            assert!(slot.refs > 0, "release of a dead candidate {id:?}");
            slot.refs -= 1;
            if slot.refs == 0 {
                let key = (std::mem::take(&mut slot.steps), slot.embedded);
                slot.deps = Box::default();
                self.lookup.remove(&key);
                self.maint[id.index()] = [f64::NAN; 3];
                self.size[id.index()] = [f64::NAN; 3];
                self.free.push(id);
            }
        }
    }

    /// Clears the memoized maintenance prices **and footprints** of every
    /// live candidate whose dependency set contains `class` — exactly the
    /// values a statistics or update-rate change for that class can move
    /// (the `oic_cost::invalidation` contract; sizes share the maintenance
    /// dependency set, see `oic_cost::invalidation::size_dependencies`).
    /// Returns the number of candidates invalidated.
    pub fn invalidate_class(&mut self, class: ClassId) -> usize {
        let mut touched = 0;
        for (i, slot) in self.slots.iter().enumerate() {
            if slot.refs > 0 && slot.deps.binary_search(&class).is_ok() {
                self.maint[i] = [f64::NAN; 3];
                self.size[i] = [f64::NAN; 3];
                touched += 1;
            }
        }
        touched
    }

    /// Read-only lookup: the live candidate spelling `steps` in `embedded`
    /// role, if any path currently exposes it. Unlike
    /// [`CandidateSpace::intern`] this acquires **no** reference — it is
    /// the what-if API's resolution primitive, safe to call without ever
    /// releasing.
    pub fn find(&self, steps: &[CandidateStep], embedded: bool) -> Option<CandidateId> {
        self.lookup.get(&(Box::from(steps), embedded)).copied()
    }

    /// Number of **live** candidates (refcount > 0).
    pub fn len(&self) -> usize {
        self.slots.len() - self.free.len()
    }

    /// Whether no candidate is live.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Whether `id` refers to a live candidate.
    pub fn is_live(&self, id: CandidateId) -> bool {
        self.slots.get(id.index()).is_some_and(|slot| slot.refs > 0)
    }

    /// Number of owning references a live candidate holds (0 if freed).
    pub fn ref_count(&self, id: CandidateId) -> u32 {
        self.slots[id.index()].refs
    }

    /// The step sequence of a live candidate.
    pub fn steps(&self, id: CandidateId) -> &[CandidateStep] {
        debug_assert!(self.is_live(id), "steps of a dead candidate");
        &self.slots[id.index()].steps
    }

    /// Whether a candidate is embedded (more steps follow it in its owning
    /// paths) or terminal.
    pub fn is_embedded(&self, id: CandidateId) -> bool {
        self.slots[id.index()].embedded
    }

    /// The maintenance dependency class set of a live candidate (sorted).
    pub fn dependencies(&self, id: CandidateId) -> &[ClassId] {
        &self.slots[id.index()].deps
    }

    /// The memoized maintenance price of `(id, org)`, computing it with
    /// `price` on first request only. Subsequent calls — from the same path
    /// or any other path sharing the candidate — return the memo until
    /// [`CandidateSpace::invalidate_class`] clears it.
    pub fn maintenance_cost(
        &mut self,
        id: CandidateId,
        org: Org,
        price: impl FnOnce() -> f64,
    ) -> f64 {
        let cell = &mut self.maint[id.index()][org.index()];
        if cell.is_nan() {
            *cell = price();
            self.pricings += 1;
        }
        *cell
    }

    /// The already-memoized maintenance price, if `(id, org)` was priced
    /// (and not invalidated or freed since).
    pub fn priced_maintenance(&self, id: CandidateId, org: Org) -> Option<f64> {
        let v = self.maint[id.index()][org.index()];
        (!v.is_nan()).then_some(v)
    }

    /// Number of maintenance prices actually computed, cumulatively. Within
    /// one epoch (no invalidation) at most one pricing happens per live
    /// `(candidate, org)` pair — by construction a shared physical subpath
    /// is never priced twice for the same statistics.
    pub fn maintenance_pricings(&self) -> u64 {
        self.pricings
    }

    /// The memoized footprint in pages of `(id, org)`, computing it with
    /// `price` on first request only — the size plane's analogue of
    /// [`CandidateSpace::maintenance_cost`]. Sizes are invalidated together
    /// with maintenance (shared dependency set), so a memoized footprint is
    /// exactly as fresh as the memoized maintenance price beside it.
    pub fn size_cost(&mut self, id: CandidateId, org: Org, price: impl FnOnce() -> f64) -> f64 {
        let cell = &mut self.size[id.index()][org.index()];
        if cell.is_nan() {
            *cell = price();
            self.size_pricings += 1;
        }
        *cell
    }

    /// The already-memoized footprint, if `(id, org)` was sized (and not
    /// invalidated or freed since).
    pub fn priced_size(&self, id: CandidateId, org: Org) -> Option<f64> {
        let v = self.size[id.index()][org.index()];
        (!v.is_nan()).then_some(v)
    }

    /// Number of footprints actually computed, cumulatively — the
    /// count-once witness for the size plane.
    pub fn size_pricings(&self) -> u64 {
        self.size_pricings
    }
}

// The parallel advisor stages read the space from worker threads
// (`priced_maintenance`/`priced_size`/`steps` against a frozen `&self`)
// while all writes stay on the sequential merge path (DESIGN.md §5.13).
// Keep the read side shareable: a lazy `Cell`-style memo here would fail
// right at this contract instead of deep inside `oic_core`'s fan-out.
const _: () = {
    const fn assert_sync_send<T: Sync + Send>() {}
    const fn memo_reads_are_shareable() {
        assert_sync_send::<CandidateSpace>();
        assert_sync_send::<CandidateId>();
    }
    _ = memo_reads_are_shareable;
};

#[cfg(test)]
mod tests {
    use super::*;
    use oic_schema::fixtures;

    #[test]
    fn interning_is_idempotent_and_dense() {
        let (schema, _) = fixtures::paper_schema();
        let pexa = fixtures::paper_path_pexa(&schema);
        let mut space = CandidateSpace::new();
        let a = space.intern_path(&schema, &pexa);
        assert_eq!(a.len(), SubpathId::count(4));
        assert_eq!(space.len(), SubpathId::count(4), "all subpaths distinct");
        // Re-interning the same path adds nothing (but acquires references).
        let b = space.intern_path(&schema, &pexa);
        assert_eq!(a, b);
        assert_eq!(space.len(), SubpathId::count(4));
        assert!(a.iter().all(|&id| space.ref_count(id) == 2));
        // Ids are dense, first-seen ordered.
        assert_eq!(a[0], CandidateId(0));
        assert!(a.iter().all(|id| id.index() < space.len()));
    }

    #[test]
    fn overlapping_paths_share_prefix_candidates() {
        let (schema, _) = fixtures::paper_schema();
        let pexa = fixtures::paper_path_pexa(&schema);
        let pe = fixtures::paper_path_pe(&schema);
        let mut space = CandidateSpace::new();
        let a = space.intern_path(&schema, &pexa);
        let before = space.len();
        let b = space.intern_path(&schema, &pe);
        // Pe = Per.owns.man.name shares Per.owns, man and Per.owns.man with
        // Pexa; its other three subpaths (ending in Company.name) are new.
        let shared = b.iter().filter(|id| id.index() < before).count();
        assert_eq!(shared, 3, "S1,1 S2,2 S1,2 are physically shared");
        let r11 = SubpathId { start: 1, end: 1 }.rank(3);
        assert_eq!(a[SubpathId { start: 1, end: 1 }.rank(4)], b[r11]);
        // Shared candidates carry two references, private ones a single one.
        assert_eq!(space.ref_count(b[r11]), 2);
        assert_eq!(space.ref_count(*b.last().unwrap()), 1);
    }

    #[test]
    fn terminal_and_embedded_roles_are_distinct_candidates() {
        // Person.owns is a complete path (paths may end on a reference
        // attribute) *and* the first subpath of Person.owns.man.name. The
        // two roles price maintenance differently — the embedded one pays
        // the boundary CMD of Vehicle deletions — so they must not share a
        // memo slot.
        let (schema, _) = fixtures::paper_schema();
        let owns = Path::parse(&schema, "Person", &["owns"]).unwrap();
        let pe = fixtures::paper_path_pe(&schema);
        let mut space = CandidateSpace::new();
        let terminal = space.intern_path(&schema, &owns)[0];
        let ids = space.intern_path(&schema, &pe);
        let embedded = ids[SubpathId { start: 1, end: 1 }.rank(3)];
        assert_eq!(space.steps(terminal), space.steps(embedded), "same steps");
        assert_ne!(terminal, embedded, "different roles, different identity");
        assert!(!space.is_embedded(terminal));
        assert!(space.is_embedded(embedded));
        // The embedded role depends on the successor (Vehicle) hierarchy;
        // the terminal role sees Person only.
        let veh = schema.class_by_name("Vehicle").unwrap();
        assert!(space.dependencies(embedded).binary_search(&veh).is_ok());
        assert!(space.dependencies(terminal).binary_search(&veh).is_err());
        // Each role keeps its own maintenance memo.
        assert_eq!(space.maintenance_cost(terminal, Org::Mx, || 1.0), 1.0);
        assert_eq!(space.maintenance_cost(embedded, Org::Mx, || 2.0), 2.0);
        assert_eq!(space.priced_maintenance(terminal, Org::Mx), Some(1.0));
        assert_eq!(space.priced_maintenance(embedded, Org::Mx), Some(2.0));
    }

    #[test]
    fn maintenance_priced_once() {
        let (schema, _) = fixtures::paper_schema();
        let pexa = fixtures::paper_path_pexa(&schema);
        let mut space = CandidateSpace::new();
        let ids = space.intern_path(&schema, &pexa);
        let id = ids[0];
        let mut calls = 0;
        let first = space.maintenance_cost(id, Org::Mx, || {
            calls += 1;
            42.0
        });
        let second = space.maintenance_cost(id, Org::Mx, || {
            calls += 1;
            99.0
        });
        assert_eq!(first, 42.0);
        assert_eq!(second, 42.0, "memo wins; the second closure never runs");
        assert_eq!(calls, 1);
        assert_eq!(space.maintenance_pricings(), 1);
        assert_eq!(space.priced_maintenance(id, Org::Mx), Some(42.0));
        assert_eq!(space.priced_maintenance(id, Org::Nix), None);
    }

    #[test]
    fn size_plane_memoizes_and_invalidates_with_maintenance() {
        let (schema, _) = fixtures::paper_schema();
        let pexa = fixtures::paper_path_pexa(&schema);
        let mut space = CandidateSpace::new();
        let ids = space.intern_path(&schema, &pexa);
        let id = ids[SubpathId { start: 1, end: 2 }.rank(4)];
        // Memoized like maintenance: the second closure never runs.
        assert_eq!(space.size_cost(id, Org::Nix, || 500.0), 500.0);
        assert_eq!(space.size_cost(id, Org::Nix, || unreachable!()), 500.0);
        assert_eq!(space.size_pricings(), 1);
        assert_eq!(space.priced_size(id, Org::Nix), Some(500.0));
        assert_eq!(space.priced_size(id, Org::Mx), None);
        space.maintenance_cost(id, Org::Nix, || 7.0);
        // Invalidating a dependency class clears both planes together…
        let person = schema.class_by_name("Person").unwrap();
        space.invalidate_class(person);
        assert_eq!(space.priced_size(id, Org::Nix), None);
        assert_eq!(space.priced_maintenance(id, Org::Nix), None);
        // …and an out-of-dependency class clears neither.
        space.size_cost(id, Org::Nix, || 501.0);
        let division = schema.class_by_name("Division").unwrap();
        space.invalidate_class(division);
        assert_eq!(space.priced_size(id, Org::Nix), Some(501.0));
        // Freeing the candidate drops the footprint with everything else.
        space.release_path(&ids);
        assert!(space.is_empty());
        let again = space.intern_path(&schema, &pexa);
        for &id in &again {
            for org in Org::ALL {
                assert_eq!(space.priced_size(id, org), None, "stale size leaked");
            }
        }
    }

    #[test]
    fn releasing_the_last_owner_frees_the_candidate() {
        let (schema, _) = fixtures::paper_schema();
        let pexa = fixtures::paper_path_pexa(&schema);
        let pe = fixtures::paper_path_pe(&schema);
        let mut space = CandidateSpace::new();
        let a = space.intern_path(&schema, &pexa);
        let b = space.intern_path(&schema, &pe);
        let shared = b[SubpathId { start: 1, end: 2 }.rank(3)]; // Per.owns.man
        space.maintenance_cost(shared, Org::Nix, || 7.0);
        let live_before = space.len();

        // Dropping Pexa keeps Pe's candidates alive — including the shared
        // prefix, whose memo survives.
        space.release_path(&a);
        assert!(space.is_live(shared));
        assert_eq!(space.ref_count(shared), 1);
        assert_eq!(space.priced_maintenance(shared, Org::Nix), Some(7.0));
        assert_eq!(space.len(), live_before - (a.len() - 3));

        // Dropping Pe frees everything: refcounts hit zero, memos clear.
        space.release_path(&b);
        assert!(!space.is_live(shared));
        assert!(space.is_empty());
        assert_eq!(space.priced_maintenance(shared, Org::Nix), None);
    }

    #[test]
    fn freed_ids_are_recycled_without_leaking_memos() {
        let (schema, _) = fixtures::paper_schema();
        let owns = Path::parse(&schema, "Person", &["owns"]).unwrap();
        let pe = fixtures::paper_path_pe(&schema);
        let mut space = CandidateSpace::new();
        let a = space.intern_path(&schema, &owns);
        space.maintenance_cost(a[0], Org::Mx, || 123.0);
        space.release_path(&a);
        assert!(space.is_empty());
        // The next interning recycles the freed slot: same dense index, but
        // a fresh identity whose memo must NOT see the stale 123.0.
        let b = space.intern_path(&schema, &pe);
        assert!(b.contains(&a[0]), "freed id recycled");
        for &id in &b {
            assert_eq!(space.priced_maintenance(id, Org::Mx), None);
        }
        // Re-interning the departed path now yields a *different* id for
        // the same steps — identity is live-set-relative…
        let c = space.intern_path(&schema, &owns);
        assert!(space.is_live(c[0]));
        // …and the arena stays dense: no slot is wasted.
        assert_eq!(space.len(), SubpathId::count(3) + 1);
    }

    #[test]
    fn invalidate_class_clears_exactly_the_dependent_memos() {
        let (schema, _) = fixtures::paper_schema();
        let pexa = fixtures::paper_path_pexa(&schema); // Per.owns.man.divs.name
        let mut space = CandidateSpace::new();
        let ids = space.intern_path(&schema, &pexa);
        let n = 4;
        for (r, &id) in ids.iter().enumerate() {
            space.maintenance_cost(id, Org::Mx, || r as f64);
        }
        let division = schema.class_by_name("Division").unwrap();
        // Division appears at position 4 only: the dependent candidates are
        // the subpaths containing position 4 plus the embedded ones ending
        // at position 3 (their boundary CMD is Division deletions).
        let touched = space.invalidate_class(division);
        let mut expect = 0;
        for (r, &id) in ids.iter().enumerate() {
            let sub = SubpathId::from_rank(n, r);
            let dependent = sub.end >= 3;
            if dependent {
                expect += 1;
                assert_eq!(space.priced_maintenance(id, Org::Mx), None, "{sub}");
            } else {
                assert!(space.priced_maintenance(id, Org::Mx).is_some(), "{sub}");
            }
        }
        assert_eq!(touched, expect);
        // Person sits at position 1: every subpath starting there depends
        // on it; the rest were already invalidated or remain priced.
        let person = schema.class_by_name("Person").unwrap();
        let touched = space.invalidate_class(person);
        assert_eq!(touched, n, "S1,1 S1,2 S1,3 S1,4");
    }

    /// The cross-crate half of the `oic_cost::invalidation` contract:
    /// re-pricing after an out-of-dependency drift reproduces the memoized
    /// price bit-identically, and an in-dependency drift moves it.
    #[test]
    fn invalidation_contract_matches_priced_costs() {
        use crate::{pc, Choice};
        use oic_cost::{CostModel, CostParams, PathCharacteristics};
        use oic_workload::{LoadDistribution, Triplet};

        let (schema, _) = fixtures::paper_schema();
        let pexa = fixtures::paper_path_pexa(&schema);
        let division = schema.class_by_name("Division").unwrap();
        let sub = SubpathId { start: 1, end: 2 }; // deps exclude Division
        let deps = oic_cost::invalidation::maintenance_dependencies(&schema, &pexa, sub);
        assert!(deps.binary_search(&division).is_err());

        let price = |div_scale: f64| {
            let chars = PathCharacteristics::build(&schema, &pexa, |c| {
                let s = oic_cost::ClassStats::new(10_000.0, 1_000.0, 2.0);
                if c == division {
                    oic_cost::ClassStats::new(s.n * div_scale, s.d * div_scale, s.nin)
                } else {
                    s
                }
            });
            let model = CostModel::new(&schema, &pexa, &chars, CostParams::default());
            let ld = LoadDistribution::build(&schema, &pexa, |_| Triplet::new(0.0, 0.1, 0.1));
            pc::processing_cost(&model, &ld, sub, Choice::Index(Org::Nix))
        };
        // Drifting Division does not move the price of Per.owns.man…
        assert_eq!(price(1.0).to_bits(), price(5.0).to_bits());
        // …which is why invalidate_class(Division) may skip its memo row.
        let mut space = CandidateSpace::new();
        let ids = space.intern_path(&schema, &pexa);
        let id = ids[sub.rank(4)];
        space.maintenance_cost(id, Org::Nix, || price(1.0));
        space.invalidate_class(division);
        assert_eq!(space.priced_maintenance(id, Org::Nix), Some(price(5.0)));
    }
}
