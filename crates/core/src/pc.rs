//! Per-subpath processing cost (Definition 4.2 and Propositions 4.1/4.2).

use crate::Choice;
use oic_cost::{CostModel, Org};
use oic_schema::SubpathId;
use oic_workload::{derive_subpath_load, LoadDistribution};

/// `PC(S, X)` — the expected page accesses per unit time for subpath `S`
/// indexed by `X`, under the derived subpath workload:
///
/// ```text
/// PC = Σ_{(l,x) ∈ scope(S)} [ α·CR_X(C_{l,x}) + β·CMI_X(C_{l,x}) + γ·CMD_X(C_{l,x}) ]
///    + (Σ upstream α) · CR⁺_X(position s)
///    + (Σ_x γ_{e+1,x}) · CMD_X(A_e)          (when A_e ≠ A_n)
/// ```
///
/// The first line is the native load; the second charges traversals caused
/// by queries targeting upstream classes (Section 3.2's folded load); the
/// third is the Section 4 cross-subpath deletion adjustment, assigned to
/// this (the preceding) subpath so that configuration costs stay additive.
pub fn processing_cost(
    model: &CostModel<'_>,
    ld: &LoadDistribution,
    sub: SubpathId,
    choice: Choice,
) -> f64 {
    let n = model.path().len();
    let load = derive_subpath_load(ld, sub, n);
    match choice {
        Choice::Index(org) => {
            let mut total = 0.0;
            for &(l, x, t) in &load.native {
                if t.query > 0.0 {
                    total += t.query * model.retrieval(org, sub, l, x);
                }
                if t.insert > 0.0 {
                    total += t.insert * model.maint_insert(org, sub, l, x);
                }
                if t.delete > 0.0 {
                    total += t.delete * model.maint_delete(org, sub, l, x);
                }
            }
            if load.traversal_query > 0.0 {
                total += load.traversal_query * model.retrieval_traversal(org, sub);
            }
            if load.boundary_delete > 0.0 {
                total += load.boundary_delete * model.boundary_delete(org, sub);
            }
            total
        }
        Choice::NoIndex => {
            // Queries pay a scan of the subpath's scope; maintenance is free.
            let query_mass = load.native_query_mass() + load.traversal_query;
            query_mass * model.no_index_retrieval(sub)
        }
    }
}

/// Total processing cost of a configuration — by Proposition 4.2 the sum of
/// its subpaths' processing costs.
pub fn configuration_cost(
    model: &CostModel<'_>,
    ld: &LoadDistribution,
    config: &crate::IndexConfiguration,
) -> f64 {
    config
        .pairs()
        .iter()
        .map(|&(sub, choice)| processing_cost(model, ld, sub, choice))
        .sum()
}

/// Convenience: cost of indexing the whole path with a single organization
/// (the baseline the paper compares against in Example 5.1).
pub fn whole_path_cost(model: &CostModel<'_>, ld: &LoadDistribution, org: Org) -> f64 {
    let n = model.path().len();
    processing_cost(
        model,
        ld,
        SubpathId { start: 1, end: n },
        Choice::Index(org),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::IndexConfiguration;
    use oic_cost::characteristics::example51;
    use oic_cost::CostParams;
    use oic_schema::fixtures;
    use oic_workload::example51_load;

    struct Fx {
        schema: oic_schema::Schema,
        path: oic_schema::Path,
        chars: oic_cost::PathCharacteristics,
        ld: LoadDistribution,
    }

    fn fx() -> Fx {
        let (schema, _) = fixtures::paper_schema();
        let (path, chars) = example51(&schema);
        let ld = example51_load(&schema, &path);
        Fx {
            schema,
            path,
            chars,
            ld,
        }
    }

    fn sid(s: usize, e: usize) -> SubpathId {
        SubpathId { start: s, end: e }
    }

    #[test]
    fn all_subpath_costs_positive_and_finite() {
        let f = fx();
        let m = CostModel::new(&f.schema, &f.path, &f.chars, CostParams::default());
        for sub in f.path.subpath_ids() {
            for org in Org::ALL {
                let c = processing_cost(&m, &f.ld, sub, Choice::Index(org));
                assert!(c.is_finite() && c > 0.0, "{org} on {sub}: {c}");
            }
            let c = processing_cost(&m, &f.ld, sub, Choice::NoIndex);
            assert!(c.is_finite() && c >= 0.0);
        }
    }

    #[test]
    fn configuration_cost_is_additive() {
        let f = fx();
        let m = CostModel::new(&f.schema, &f.path, &f.chars, CostParams::default());
        let config = IndexConfiguration::new(
            vec![
                (sid(1, 2), Choice::Index(Org::Nix)),
                (sid(3, 4), Choice::Index(Org::Mx)),
            ],
            4,
        )
        .unwrap();
        let total = configuration_cost(&m, &f.ld, &config);
        let a = processing_cost(&m, &f.ld, sid(1, 2), Choice::Index(Org::Nix));
        let b = processing_cost(&m, &f.ld, sid(3, 4), Choice::Index(Org::Mx));
        assert!((total - (a + b)).abs() < 1e-9);
    }

    #[test]
    fn whole_path_equals_degree_one_configuration() {
        let f = fx();
        let m = CostModel::new(&f.schema, &f.path, &f.chars, CostParams::default());
        for org in Org::ALL {
            let direct = whole_path_cost(&m, &f.ld, org);
            let via = configuration_cost(
                &m,
                &f.ld,
                &IndexConfiguration::whole_path(org, f.path.len()),
            );
            assert!((direct - via).abs() < 1e-9);
        }
    }

    #[test]
    fn no_index_subpath_costs_scans_per_query() {
        let f = fx();
        let m = CostModel::new(&f.schema, &f.path, &f.chars, CostParams::default());
        // S_{3,4} sees native queries (Comp 0.1, Div 0.2) + upstream 0.65.
        let c = processing_cost(&m, &f.ld, sid(3, 4), Choice::NoIndex);
        let per_scan = m.no_index_retrieval(sid(3, 4));
        assert!((c - 0.95 * per_scan).abs() < 1e-9);
    }

    #[test]
    fn query_only_load_prefers_nix_update_only_prefers_mx() {
        // The trade-off driving the whole paper, at PC level.
        let f = fx();
        let m = CostModel::new(&f.schema, &f.path, &f.chars, CostParams::default());
        let full = sid(1, 4);
        let queries = LoadDistribution::uniform(
            &f.schema,
            &f.path,
            oic_workload::Triplet::new(1.0, 0.0, 0.0),
        );
        let updates = LoadDistribution::uniform(
            &f.schema,
            &f.path,
            oic_workload::Triplet::new(0.0, 0.5, 0.5),
        );
        let nix_q = processing_cost(&m, &queries, full, Choice::Index(Org::Nix));
        let mx_q = processing_cost(&m, &queries, full, Choice::Index(Org::Mx));
        assert!(nix_q < mx_q, "queries: NIX {nix_q:.1} < MX {mx_q:.1}");
        let nix_u = processing_cost(&m, &updates, full, Choice::Index(Org::Nix));
        let mx_u = processing_cost(&m, &updates, full, Choice::Index(Org::Mx));
        assert!(mx_u < nix_u, "updates: MX {mx_u:.1} < NIX {nix_u:.1}");
    }
}
