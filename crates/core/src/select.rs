//! The `Opt_Ind_Con` procedure: branch-and-bound selection (Section 5),
//! the exhaustive `2^(n-1)` baseline, and [`opt_ind_con_dp`] — the
//! polynomial interval dynamic program over the same candidate space.

use crate::{Choice, CostMatrix, IndexConfiguration};
use oic_schema::SubpathId;

/// `2^(n-1)` — the recombination count of Section 5, saturating for paths
/// long enough to overflow (the DP handles those; enumeration never could).
pub fn candidate_space_size(n: usize) -> u64 {
    if n == 0 {
        0
    } else if n > u64::BITS as usize {
        u64::MAX
    } else {
        1u64 << (n - 1)
    }
}

/// Outcome of a selection run.
#[derive(Debug, Clone)]
pub struct SelectionResult {
    /// The optimal configuration.
    pub best: IndexConfiguration,
    /// Its processing cost (`PC_min`).
    pub cost: f64,
    /// Number of *complete* configurations whose total cost was computed.
    /// The paper reports this as “the procedure found the optimal
    /// configuration by exploring 4 index configurations instead of … 8”.
    pub evaluated: u64,
    /// Number of branch-and-bound cut-offs (partial prefixes abandoned
    /// because their accumulated cost already reached `PC_min`).
    pub pruned: u64,
    /// Total candidate space, `2^(n-1)`.
    pub candidate_space: u64,
}

/// Branch and bound over the recombinations of subpaths (Section 5).
///
/// The search follows the paper's order exactly: from any starting position
/// it first tries the longest remaining piece (the whole-path configuration
/// is therefore the first candidate evaluated, initializing `PC_min`), then
/// progressively shorter leading pieces. A partial prefix whose accumulated
/// minimum cost already reaches `PC_min` is abandoned together with every
/// configuration containing it; a piece that completes the path is always
/// evaluated against `PC_min` (computing its total *is* the evaluation).
pub fn opt_ind_con(matrix: &CostMatrix) -> SelectionResult {
    let n = matrix.path_len();
    let mut state = Search {
        matrix,
        n,
        best: Vec::new(),
        best_cost: f64::INFINITY,
        evaluated: 0,
        pruned: 0,
    };
    state.descend(1, 0.0, &mut Vec::new());
    let best = IndexConfiguration::new(state.best.clone(), n)
        .expect("search always finds a covering configuration");
    SelectionResult {
        best,
        cost: state.best_cost,
        evaluated: state.evaluated,
        pruned: state.pruned,
        candidate_space: candidate_space_size(n),
    }
}

/// `Opt_Ind_Con_DP` — exact selection by interval dynamic programming in
/// `O(n² · |choices|²)` time, replacing the `2^(n-1)` recombination search.
///
/// The path-partitioning structure the paper enumerates admits a polynomial
/// optimum (Jordan et al., *Optimal On The Fly Index Selection in Polynomial
/// Time*): every configuration is a sequence of cut positions, so the prefix
/// optima compose. The DP state is `(j, X)` — *the last piece ends at
/// position `j` and is organized as `X`* — and the transition closes a piece
/// `S_{i,j}`:
///
/// ```text
/// dp[j][X] = min over i ≤ j, Y:  dp[i-1][Y] + a(S_{i,j}, X)
/// ```
///
/// The `(j, X)` state carries the Section 4 adjacency coupling: the `CMD`
/// term — extra maintenance on the piece *preceding* a cut when an object
/// of the next piece's starting class is deleted — is priced by
/// `a(S_{i,j}, X)` against `X`, the organization that owns the boundary
/// index. Note that because Definition 4.2 folds `CMD` into the preceding
/// subpath's own cell, `a` is independent of the *successor*'s organization
/// `Y`; the min over `Y` therefore collapses into a running prefix optimum
/// and the implementation performs `O(n² · |choices|)` transitions. The
/// per-`X` state dimension is retained deliberately — it is where a
/// boundary term that *did* depend on the successor's organization would
/// live (a cost model pricing, say, cross-index pointer rewrites), and it
/// is what the reconstruction reads the chosen organizations from.
///
/// `evaluated` counts DP transitions (pieces priced), the polynomial
/// analogue of the branch-and-bound's evaluated-configuration counter;
/// `pruned` is always 0. Considers the no-index column when present,
/// with the same tie-breaking as [`CostMatrix::min_cost`] (first column
/// wins ties, longer last piece preferred like the paper's search order).
pub fn opt_ind_con_dp(matrix: &CostMatrix) -> SelectionResult {
    use oic_cost::Org;
    let n = matrix.path_len();
    let mut choices: Vec<Choice> = Org::ALL.iter().copied().map(Choice::Index).collect();
    if matrix.has_no_index() {
        choices.push(Choice::NoIndex);
    }
    let nch = choices.len();
    // dp[j][c]: cheapest cover of positions 1..=j whose last piece uses
    // choices[c]; parent[j][c] = (start of last piece, choice index of the
    // piece before it; usize::MAX when the last piece starts at 1).
    let mut dp = vec![vec![f64::INFINITY; nch]; n + 1];
    let mut parent = vec![vec![(0usize, usize::MAX); nch]; n + 1];
    // Prefix optimum min_Y dp[j][Y] together with its arg, so the inner
    // loop stays O(|choices|) per (i, j) pair.
    let mut prefix_best = vec![(f64::INFINITY, usize::MAX); n + 1];
    prefix_best[0] = (0.0, usize::MAX);
    let mut evaluated = 0u64;
    for j in 1..=n {
        // Longer pieces first (i ascending), matching the paper's search
        // order so cost ties resolve toward the same configuration as the
        // branch and bound.
        for i in 1..=j {
            let sub = SubpathId { start: i, end: j };
            let (prev_cost, prev_choice) = prefix_best[i - 1];
            if !prev_cost.is_finite() {
                continue;
            }
            for (c, &choice) in choices.iter().enumerate() {
                let piece = matrix.choice_cost(sub, choice);
                evaluated += 1;
                let total = prev_cost + piece;
                if total < dp[j][c] {
                    dp[j][c] = total;
                    parent[j][c] = (i, prev_choice);
                }
            }
        }
        let mut best = (f64::INFINITY, usize::MAX);
        for (c, &cost) in dp[j].iter().enumerate() {
            if cost < best.0 {
                best = (cost, c);
            }
        }
        prefix_best[j] = best;
    }
    // Reconstruct the optimal configuration back-to-front.
    let (cost, mut c) = prefix_best[n];
    debug_assert!(cost.is_finite(), "matrix rows must cover the path");
    let mut pairs = Vec::new();
    let mut j = n;
    while j > 0 {
        let (i, prev_c) = parent[j][c];
        pairs.push((SubpathId { start: i, end: j }, choices[c]));
        j = i - 1;
        c = prev_c;
    }
    pairs.reverse();
    SelectionResult {
        best: IndexConfiguration::new(pairs, n).expect("DP pieces concatenate to the full path"),
        cost,
        evaluated,
        pruned: 0,
        candidate_space: candidate_space_size(n),
    }
}

struct Search<'a> {
    matrix: &'a CostMatrix,
    n: usize,
    best: Vec<(SubpathId, Choice)>,
    best_cost: f64,
    evaluated: u64,
    pruned: u64,
}

impl Search<'_> {
    fn descend(&mut self, start: usize, acc: f64, prefix: &mut Vec<(SubpathId, Choice)>) {
        // Longest-first, per the paper's walkthrough.
        for end in (start..=self.n).rev() {
            let sub = SubpathId { start, end };
            let (choice, cost) = self.matrix.min_cost(sub);
            let total = acc + cost;
            if end == self.n {
                // Completing piece: computing the sum is the evaluation.
                self.evaluated += 1;
                if total < self.best_cost {
                    self.best_cost = total;
                    self.best = prefix
                        .iter()
                        .copied()
                        .chain(std::iter::once((sub, choice)))
                        .collect();
                }
            } else if total >= self.best_cost {
                // “… the index configuration including S will not be
                // considered any longer since its processing cost will be
                // higher than the processing cost of the best one.”
                self.pruned += 1;
            } else {
                prefix.push((sub, choice));
                self.descend(end + 1, total, prefix);
                prefix.pop();
            }
        }
    }
}

/// Exhaustive baseline: enumerates all `2^(n-1)` recombinations, evaluating
/// each with the per-row minima. Used to verify branch and bound and for the
/// Section 5 complexity experiment.
pub fn exhaustive(matrix: &CostMatrix) -> SelectionResult {
    let n = matrix.path_len();
    let total = 1u64 << (n - 1);
    let mut best_cost = f64::INFINITY;
    let mut best: Vec<(SubpathId, Choice)> = Vec::new();
    for mask in 0..total {
        // Bit i set (i in 0..n-1) = a cut after position i+1.
        let mut parts = Vec::new();
        let mut start = 1usize;
        let mut cost = 0.0;
        for pos in 1..=n {
            let cut = pos == n || (mask >> (pos - 1)) & 1 == 1;
            if cut {
                let sub = SubpathId { start, end: pos };
                let (choice, c) = matrix.min_cost(sub);
                parts.push((sub, choice));
                cost += c;
                start = pos + 1;
            }
        }
        if cost < best_cost {
            best_cost = cost;
            best = parts;
        }
    }
    SelectionResult {
        best: IndexConfiguration::new(best, n).expect("masks cover the path"),
        cost: best_cost,
        evaluated: total,
        pruned: 0,
        candidate_space: total,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oic_cost::Org;

    fn sid(s: usize, e: usize) -> SubpathId {
        SubpathId { start: s, end: e }
    }

    /// A 3-position matrix where splitting wins.
    fn split_wins() -> CostMatrix {
        CostMatrix::from_values(
            3,
            &[
                (sid(1, 1), [1.0, 5.0, 5.0]),
                (sid(2, 2), [5.0, 1.0, 5.0]),
                (sid(3, 3), [5.0, 5.0, 1.0]),
                (sid(1, 2), [9.0, 9.0, 9.0]),
                (sid(2, 3), [9.0, 9.0, 9.0]),
                (sid(1, 3), [9.0, 9.0, 8.0]),
            ],
        )
    }

    /// A matrix where the whole path wins.
    fn whole_wins() -> CostMatrix {
        CostMatrix::from_values(
            3,
            &[
                (sid(1, 1), [4.0, 5.0, 5.0]),
                (sid(2, 2), [4.0, 5.0, 5.0]),
                (sid(3, 3), [4.0, 5.0, 5.0]),
                (sid(1, 2), [7.0, 9.0, 9.0]),
                (sid(2, 3), [7.0, 9.0, 9.0]),
                (sid(1, 3), [9.0, 9.0, 2.0]),
            ],
        )
    }

    #[test]
    fn bb_finds_three_way_split() {
        let r = opt_ind_con(&split_wins());
        assert_eq!(r.cost, 3.0);
        assert_eq!(r.best.degree(), 3);
        assert_eq!(r.best.pairs()[0], (sid(1, 1), Choice::Index(Org::Mx)));
        assert_eq!(r.best.pairs()[1], (sid(2, 2), Choice::Index(Org::Mix)));
        assert_eq!(r.best.pairs()[2], (sid(3, 3), Choice::Index(Org::Nix)));
    }

    #[test]
    fn bb_keeps_whole_path_when_best() {
        let r = opt_ind_con(&whole_wins());
        assert_eq!(r.cost, 2.0);
        assert_eq!(r.best.degree(), 1);
        // With PC_min = 2 after the first candidate, every proper prefix
        // (cost ≥ 4) is pruned immediately: only 1 evaluation.
        assert_eq!(r.evaluated, 1);
        assert_eq!(r.pruned, 2, "prefixes S1,2 and S1,1");
    }

    #[test]
    fn bb_matches_exhaustive() {
        for m in [split_wins(), whole_wins()] {
            let a = opt_ind_con(&m);
            let b = exhaustive(&m);
            assert_eq!(a.cost, b.cost);
            assert_eq!(a.best.pairs(), b.best.pairs());
            assert!(a.evaluated <= b.evaluated);
        }
    }

    #[test]
    fn exhaustive_candidate_count() {
        let r = exhaustive(&split_wins());
        assert_eq!(r.candidate_space, 4);
        assert_eq!(r.evaluated, 4);
    }

    #[test]
    fn single_position_path() {
        let m = CostMatrix::from_values(1, &[(sid(1, 1), [2.0, 3.0, 4.0])]);
        let r = opt_ind_con(&m);
        assert_eq!(r.cost, 2.0);
        assert_eq!(r.best.degree(), 1);
        assert_eq!(r.candidate_space, 1);
    }

    #[test]
    fn dp_matches_exhaustive_on_fixtures() {
        for m in [split_wins(), whole_wins(), crate::fig6::fig6_matrix()] {
            let dp = opt_ind_con_dp(&m);
            let ex = exhaustive(&m);
            assert!((dp.cost - ex.cost).abs() < 1e-9);
            assert_eq!(dp.best.pairs(), ex.best.pairs());
            // The configuration's cost re-derives from the matrix cells.
            let derived: f64 = dp
                .best
                .pairs()
                .iter()
                .map(|&(sub, choice)| match choice {
                    Choice::Index(org) => m.cost(sub, org),
                    Choice::NoIndex => unreachable!("no-index column not built"),
                })
                .sum();
            assert!((derived - dp.cost).abs() < 1e-9);
        }
    }

    #[test]
    fn dp_transition_count_is_polynomial() {
        let m = split_wins();
        let dp = opt_ind_con_dp(&m);
        // n(n+1)/2 pieces × 3 organizations.
        assert_eq!(dp.evaluated, 6 * 3);
        assert_eq!(dp.pruned, 0);
        assert_eq!(dp.candidate_space, 4);
    }

    #[test]
    fn dp_single_position_path() {
        let m = CostMatrix::from_values(1, &[(sid(1, 1), [2.0, 3.0, 4.0])]);
        let r = opt_ind_con_dp(&m);
        assert_eq!(r.cost, 2.0);
        assert_eq!(r.best.pairs(), &[(sid(1, 1), Choice::Index(Org::Mx))]);
    }

    #[test]
    fn candidate_space_saturates() {
        assert_eq!(candidate_space_size(1), 1);
        assert_eq!(candidate_space_size(4), 8);
        assert_eq!(candidate_space_size(64), 1u64 << 63);
        assert_eq!(candidate_space_size(65), u64::MAX);
        assert_eq!(candidate_space_size(200), u64::MAX);
    }

    #[test]
    fn dp_equals_bb_on_random_matrices() {
        let mut seed = 0xC0FFEE_u64;
        let mut next = move || {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            (seed % 1000) as f64 / 100.0 + 0.1
        };
        for n in 2..=10 {
            let mut values = Vec::new();
            for len in 1..=n {
                for start in 1..=(n - len + 1) {
                    values.push((sid(start, start + len - 1), [next(), next(), next()]));
                }
            }
            let m = CostMatrix::from_values(n, &values);
            let dp = opt_ind_con_dp(&m);
            let bb = opt_ind_con(&m);
            assert!(
                (dp.cost - bb.cost).abs() < 1e-9,
                "n={n}: dp {} vs bb {}",
                dp.cost,
                bb.cost
            );
        }
    }

    #[test]
    fn bb_equals_exhaustive_on_random_matrices() {
        // Deterministic pseudo-random matrices across path lengths.
        let mut seed = 0x9E3779B97F4A7C15u64;
        let mut next = move || {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            (seed % 1000) as f64 / 100.0 + 0.1
        };
        for n in 2..=8 {
            let mut values = Vec::new();
            for len in 1..=n {
                for start in 1..=(n - len + 1) {
                    values.push((sid(start, start + len - 1), [next(), next(), next()]));
                }
            }
            let m = CostMatrix::from_values(n, &values);
            let a = opt_ind_con(&m);
            let b = exhaustive(&m);
            assert!(
                (a.cost - b.cost).abs() < 1e-9,
                "n={n}: bb {} vs exhaustive {}",
                a.cost,
                b.cost
            );
            assert!(a.evaluated <= b.evaluated);
        }
    }
}
