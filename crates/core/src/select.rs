//! The `Opt_Ind_Con` procedure: branch-and-bound selection (Section 5),
//! plus the exhaustive `2^(n-1)` baseline.

use crate::{Choice, CostMatrix, IndexConfiguration};
use oic_schema::SubpathId;

/// Outcome of a selection run.
#[derive(Debug, Clone)]
pub struct SelectionResult {
    /// The optimal configuration.
    pub best: IndexConfiguration,
    /// Its processing cost (`PC_min`).
    pub cost: f64,
    /// Number of *complete* configurations whose total cost was computed.
    /// The paper reports this as “the procedure found the optimal
    /// configuration by exploring 4 index configurations instead of … 8”.
    pub evaluated: u64,
    /// Number of branch-and-bound cut-offs (partial prefixes abandoned
    /// because their accumulated cost already reached `PC_min`).
    pub pruned: u64,
    /// Total candidate space, `2^(n-1)`.
    pub candidate_space: u64,
}

/// Branch and bound over the recombinations of subpaths (Section 5).
///
/// The search follows the paper's order exactly: from any starting position
/// it first tries the longest remaining piece (the whole-path configuration
/// is therefore the first candidate evaluated, initializing `PC_min`), then
/// progressively shorter leading pieces. A partial prefix whose accumulated
/// minimum cost already reaches `PC_min` is abandoned together with every
/// configuration containing it; a piece that completes the path is always
/// evaluated against `PC_min` (computing its total *is* the evaluation).
pub fn opt_ind_con(matrix: &CostMatrix) -> SelectionResult {
    let n = matrix.path_len();
    let mut state = Search {
        matrix,
        n,
        best: Vec::new(),
        best_cost: f64::INFINITY,
        evaluated: 0,
        pruned: 0,
    };
    state.descend(1, 0.0, &mut Vec::new());
    let best = IndexConfiguration::new(state.best.clone(), n)
        .expect("search always finds a covering configuration");
    SelectionResult {
        best,
        cost: state.best_cost,
        evaluated: state.evaluated,
        pruned: state.pruned,
        candidate_space: 1u64 << (n - 1),
    }
}

struct Search<'a> {
    matrix: &'a CostMatrix,
    n: usize,
    best: Vec<(SubpathId, Choice)>,
    best_cost: f64,
    evaluated: u64,
    pruned: u64,
}

impl Search<'_> {
    fn descend(&mut self, start: usize, acc: f64, prefix: &mut Vec<(SubpathId, Choice)>) {
        // Longest-first, per the paper's walkthrough.
        for end in (start..=self.n).rev() {
            let sub = SubpathId { start, end };
            let (choice, cost) = self.matrix.min_cost(sub);
            let total = acc + cost;
            if end == self.n {
                // Completing piece: computing the sum is the evaluation.
                self.evaluated += 1;
                if total < self.best_cost {
                    self.best_cost = total;
                    self.best = prefix
                        .iter()
                        .copied()
                        .chain(std::iter::once((sub, choice)))
                        .collect();
                }
            } else if total >= self.best_cost {
                // “… the index configuration including S will not be
                // considered any longer since its processing cost will be
                // higher than the processing cost of the best one.”
                self.pruned += 1;
            } else {
                prefix.push((sub, choice));
                self.descend(end + 1, total, prefix);
                prefix.pop();
            }
        }
    }
}

/// Exhaustive baseline: enumerates all `2^(n-1)` recombinations, evaluating
/// each with the per-row minima. Used to verify branch and bound and for the
/// Section 5 complexity experiment.
pub fn exhaustive(matrix: &CostMatrix) -> SelectionResult {
    let n = matrix.path_len();
    let total = 1u64 << (n - 1);
    let mut best_cost = f64::INFINITY;
    let mut best: Vec<(SubpathId, Choice)> = Vec::new();
    for mask in 0..total {
        // Bit i set (i in 0..n-1) = a cut after position i+1.
        let mut parts = Vec::new();
        let mut start = 1usize;
        let mut cost = 0.0;
        for pos in 1..=n {
            let cut = pos == n || (mask >> (pos - 1)) & 1 == 1;
            if cut {
                let sub = SubpathId { start, end: pos };
                let (choice, c) = matrix.min_cost(sub);
                parts.push((sub, choice));
                cost += c;
                start = pos + 1;
            }
        }
        if cost < best_cost {
            best_cost = cost;
            best = parts;
        }
    }
    SelectionResult {
        best: IndexConfiguration::new(best, n).expect("masks cover the path"),
        cost: best_cost,
        evaluated: total,
        pruned: 0,
        candidate_space: total,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oic_cost::Org;

    fn sid(s: usize, e: usize) -> SubpathId {
        SubpathId { start: s, end: e }
    }

    /// A 3-position matrix where splitting wins.
    fn split_wins() -> CostMatrix {
        CostMatrix::from_values(
            3,
            &[
                (sid(1, 1), [1.0, 5.0, 5.0]),
                (sid(2, 2), [5.0, 1.0, 5.0]),
                (sid(3, 3), [5.0, 5.0, 1.0]),
                (sid(1, 2), [9.0, 9.0, 9.0]),
                (sid(2, 3), [9.0, 9.0, 9.0]),
                (sid(1, 3), [9.0, 9.0, 8.0]),
            ],
        )
    }

    /// A matrix where the whole path wins.
    fn whole_wins() -> CostMatrix {
        CostMatrix::from_values(
            3,
            &[
                (sid(1, 1), [4.0, 5.0, 5.0]),
                (sid(2, 2), [4.0, 5.0, 5.0]),
                (sid(3, 3), [4.0, 5.0, 5.0]),
                (sid(1, 2), [7.0, 9.0, 9.0]),
                (sid(2, 3), [7.0, 9.0, 9.0]),
                (sid(1, 3), [9.0, 9.0, 2.0]),
            ],
        )
    }

    #[test]
    fn bb_finds_three_way_split() {
        let r = opt_ind_con(&split_wins());
        assert_eq!(r.cost, 3.0);
        assert_eq!(r.best.degree(), 3);
        assert_eq!(r.best.pairs()[0], (sid(1, 1), Choice::Index(Org::Mx)));
        assert_eq!(r.best.pairs()[1], (sid(2, 2), Choice::Index(Org::Mix)));
        assert_eq!(r.best.pairs()[2], (sid(3, 3), Choice::Index(Org::Nix)));
    }

    #[test]
    fn bb_keeps_whole_path_when_best() {
        let r = opt_ind_con(&whole_wins());
        assert_eq!(r.cost, 2.0);
        assert_eq!(r.best.degree(), 1);
        // With PC_min = 2 after the first candidate, every proper prefix
        // (cost ≥ 4) is pruned immediately: only 1 evaluation.
        assert_eq!(r.evaluated, 1);
        assert_eq!(r.pruned, 2, "prefixes S1,2 and S1,1");
    }

    #[test]
    fn bb_matches_exhaustive() {
        for m in [split_wins(), whole_wins()] {
            let a = opt_ind_con(&m);
            let b = exhaustive(&m);
            assert_eq!(a.cost, b.cost);
            assert_eq!(a.best.pairs(), b.best.pairs());
            assert!(a.evaluated <= b.evaluated);
        }
    }

    #[test]
    fn exhaustive_candidate_count() {
        let r = exhaustive(&split_wins());
        assert_eq!(r.candidate_space, 4);
        assert_eq!(r.evaluated, 4);
    }

    #[test]
    fn single_position_path() {
        let m = CostMatrix::from_values(1, &[(sid(1, 1), [2.0, 3.0, 4.0])]);
        let r = opt_ind_con(&m);
        assert_eq!(r.cost, 2.0);
        assert_eq!(r.best.degree(), 1);
        assert_eq!(r.candidate_space, 1);
    }

    #[test]
    fn bb_equals_exhaustive_on_random_matrices() {
        // Deterministic pseudo-random matrices across path lengths.
        let mut seed = 0x9E3779B97F4A7C15u64;
        let mut next = move || {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            (seed % 1000) as f64 / 100.0 + 0.1
        };
        for n in 2..=8 {
            let mut values = Vec::new();
            for len in 1..=n {
                for start in 1..=(n - len + 1) {
                    values.push((sid(start, start + len - 1), [next(), next(), next()]));
                }
            }
            let m = CostMatrix::from_values(n, &values);
            let a = opt_ind_con(&m);
            let b = exhaustive(&m);
            assert!(
                (a.cost - b.cost).abs() < 1e-9,
                "n={n}: bb {} vs exhaustive {}",
                a.cost,
                b.cost
            );
            assert!(a.evaluated <= b.evaluated);
        }
    }
}
