//! The `Opt_Ind_Con` procedure: branch-and-bound selection (Section 5),
//! the exhaustive `2^(n-1)` baseline, [`opt_ind_con_dp`] — the polynomial
//! interval dynamic program over the same candidate space — and its
//! two-objective generalization [`frontier_dp`], which carries `(cost,
//! size)` Pareto label sets through the same recurrence and answers *"the
//! cheapest configuration within a page budget"* for any budget at once.

use crate::{Choice, CostMatrix, IndexConfiguration};
use oic_schema::SubpathId;

/// `2^(n-1)` — the recombination count of Section 5, saturating for paths
/// long enough to overflow (the DP handles those; enumeration never could).
pub fn candidate_space_size(n: usize) -> u64 {
    if n == 0 {
        0
    } else if n > u64::BITS as usize {
        u64::MAX
    } else {
        1u64 << (n - 1)
    }
}

/// Outcome of a selection run.
#[derive(Debug, Clone)]
pub struct SelectionResult {
    /// The optimal configuration.
    pub best: IndexConfiguration,
    /// Its processing cost (`PC_min`).
    pub cost: f64,
    /// Number of *complete* configurations whose total cost was computed.
    /// The paper reports this as “the procedure found the optimal
    /// configuration by exploring 4 index configurations instead of … 8”.
    pub evaluated: u64,
    /// Number of branch-and-bound cut-offs (partial prefixes abandoned
    /// because their accumulated cost already reached `PC_min`).
    pub pruned: u64,
    /// Total candidate space, `2^(n-1)`.
    pub candidate_space: u64,
}

/// Branch and bound over the recombinations of subpaths (Section 5).
///
/// The search follows the paper's order exactly: from any starting position
/// it first tries the longest remaining piece (the whole-path configuration
/// is therefore the first candidate evaluated, initializing `PC_min`), then
/// progressively shorter leading pieces. A partial prefix whose accumulated
/// minimum cost already reaches `PC_min` is abandoned together with every
/// configuration containing it; a piece that completes the path is always
/// evaluated against `PC_min` (computing its total *is* the evaluation).
pub fn opt_ind_con(matrix: &CostMatrix) -> SelectionResult {
    let n = matrix.path_len();
    let mut state = Search {
        matrix,
        n,
        best: Vec::new(),
        best_cost: f64::INFINITY,
        evaluated: 0,
        pruned: 0,
    };
    state.descend(1, 0.0, &mut Vec::new());
    let best = IndexConfiguration::new(state.best.clone(), n)
        .expect("search always finds a covering configuration");
    SelectionResult {
        best,
        cost: state.best_cost,
        evaluated: state.evaluated,
        pruned: state.pruned,
        candidate_space: candidate_space_size(n),
    }
}

/// `Opt_Ind_Con_DP` — exact selection by interval dynamic programming in
/// `O(n² · |choices|²)` time, replacing the `2^(n-1)` recombination search.
///
/// The path-partitioning structure the paper enumerates admits a polynomial
/// optimum (Jordan et al., *Optimal On The Fly Index Selection in Polynomial
/// Time*): every configuration is a sequence of cut positions, so the prefix
/// optima compose. The DP state is `(j, X)` — *the last piece ends at
/// position `j` and is organized as `X`* — and the transition closes a piece
/// `S_{i,j}`:
///
/// ```text
/// dp[j][X] = min over i ≤ j, Y:  dp[i-1][Y] + a(S_{i,j}, X)
/// ```
///
/// The `(j, X)` state carries the Section 4 adjacency coupling: the `CMD`
/// term — extra maintenance on the piece *preceding* a cut when an object
/// of the next piece's starting class is deleted — is priced by
/// `a(S_{i,j}, X)` against `X`, the organization that owns the boundary
/// index. Note that because Definition 4.2 folds `CMD` into the preceding
/// subpath's own cell, `a` is independent of the *successor*'s organization
/// `Y`; the min over `Y` therefore collapses into a running prefix optimum
/// and the implementation performs `O(n² · |choices|)` transitions. The
/// per-`X` state dimension is retained deliberately — it is where a
/// boundary term that *did* depend on the successor's organization would
/// live (a cost model pricing, say, cross-index pointer rewrites), and it
/// is what the reconstruction reads the chosen organizations from.
///
/// `evaluated` counts DP transitions (pieces priced), the polynomial
/// analogue of the branch-and-bound's evaluated-configuration counter;
/// `pruned` is always 0. Considers the no-index column when present,
/// with the same tie-breaking as [`CostMatrix::min_cost`] (first column
/// wins ties, longer last piece preferred like the paper's search order).
///
/// This is the **size-blind specialization** of [`frontier_dp`]: on a
/// size-free matrix every frontier label set collapses to exactly this
/// scalar optimum, and on sized matrices the frontier's cost minimum
/// equals this cost (property-tested; configurations agree up to cost
/// ties, where the frontier prefers the leaner one). The scalar recurrence
/// is kept as its own implementation so the `O(n²·|Org|)` bound — and the
/// scaling-bench story against branch and bound — survives on matrices
/// that carry a size plane, where the frontier's label sets cost real
/// work the cost-only callers never read.
pub fn opt_ind_con_dp(matrix: &CostMatrix) -> SelectionResult {
    use oic_cost::Org;
    let n = matrix.path_len();
    let mut choices: Vec<Choice> = Org::ALL.iter().copied().map(Choice::Index).collect();
    if matrix.has_no_index() {
        choices.push(Choice::NoIndex);
    }
    let nch = choices.len();
    // dp[j][c]: cheapest cover of positions 1..=j whose last piece uses
    // choices[c]; parent[j][c] = (start of last piece, choice index of the
    // piece before it; usize::MAX when the last piece starts at 1).
    let mut dp = vec![vec![f64::INFINITY; nch]; n + 1];
    let mut parent = vec![vec![(0usize, usize::MAX); nch]; n + 1];
    // Prefix optimum min_Y dp[j][Y] together with its arg, so the inner
    // loop stays O(|choices|) per (i, j) pair.
    let mut prefix_best = vec![(f64::INFINITY, usize::MAX); n + 1];
    prefix_best[0] = (0.0, usize::MAX);
    let mut evaluated = 0u64;
    for j in 1..=n {
        // Longer pieces first (i ascending), matching the paper's search
        // order so cost ties resolve toward the same configuration as the
        // branch and bound.
        for i in 1..=j {
            let sub = SubpathId { start: i, end: j };
            let (prev_cost, prev_choice) = prefix_best[i - 1];
            if !prev_cost.is_finite() {
                continue;
            }
            for (c, &choice) in choices.iter().enumerate() {
                let piece = matrix.choice_cost(sub, choice);
                evaluated += 1;
                let total = prev_cost + piece;
                if total < dp[j][c] {
                    dp[j][c] = total;
                    parent[j][c] = (i, prev_choice);
                }
            }
        }
        let mut best = (f64::INFINITY, usize::MAX);
        for (c, &cost) in dp[j].iter().enumerate() {
            if cost < best.0 {
                best = (cost, c);
            }
        }
        prefix_best[j] = best;
    }
    // Reconstruct the optimal configuration back-to-front.
    let (cost, mut c) = prefix_best[n];
    debug_assert!(cost.is_finite(), "matrix rows must cover the path");
    let mut pairs = Vec::new();
    let mut j = n;
    while j > 0 {
        let (i, prev_c) = parent[j][c];
        pairs.push((SubpathId { start: i, end: j }, choices[c]));
        j = i - 1;
        c = prev_c;
    }
    pairs.reverse();
    SelectionResult {
        best: IndexConfiguration::new(pairs, n).expect("DP pieces concatenate to the full path"),
        cost,
        evaluated,
        pruned: 0,
        candidate_space: candidate_space_size(n),
    }
}

/// One Pareto-optimal outcome of [`frontier_dp`]: a configuration, its
/// processing cost, and its footprint in pages.
#[derive(Debug, Clone)]
pub struct FrontierPoint {
    /// Total processing cost of the configuration.
    pub cost: f64,
    /// Total footprint in pages (the matrix's size plane summed over the
    /// pieces).
    pub size: f64,
    /// The configuration realizing this `(cost, size)` trade-off.
    pub config: IndexConfiguration,
}

/// The Pareto frontier of a path's `(cost, size)` trade-off, with the DP
/// telemetry mirroring [`SelectionResult`].
#[derive(Debug, Clone)]
pub struct FrontierResult {
    /// Pareto-optimal points, cost strictly ascending / size strictly
    /// descending. Never empty for a matrix whose rows cover the path: the
    /// first point is the unconstrained cost optimum, the last the
    /// smallest-footprint configuration worth considering.
    pub points: Vec<FrontierPoint>,
    /// Pieces priced — one per `(start, end, choice)` with a reachable
    /// prefix; equals [`opt_ind_con_dp`]'s transition count.
    pub evaluated: u64,
    /// Label extensions performed (the extra work the frontier carries over
    /// the scalar DP; equals `evaluated` when every label set is a
    /// singleton, i.e. on size-free matrices).
    pub labels: u64,
    /// Total candidate space, `2^(n-1)`.
    pub candidate_space: u64,
}

impl FrontierResult {
    /// The unconstrained cost optimum — the frontier's first point.
    pub fn min_cost(&self) -> &FrontierPoint {
        self.points.first().expect("matrix rows cover the path")
    }

    /// The cheapest configuration whose footprint fits `budget_pages`, or
    /// `None` when even the smallest-footprint point exceeds the budget.
    /// Costs ascend along the frontier as sizes descend, so the first
    /// fitting point is the answer.
    pub fn within_budget(&self, budget_pages: f64) -> Option<&FrontierPoint> {
        self.points.iter().find(|p| p.size <= budget_pages)
    }
}

/// One DP label: a Pareto-optimal `(cost, size)` way to cover positions
/// `1..=j`, remembering the last piece (`start`, `choice`) and the label of
/// the prefix it extends (`parent`, an index into position `start - 1`'s
/// label set) for reconstruction.
#[derive(Debug, Clone, Copy)]
struct Label {
    cost: f64,
    size: f64,
    start: usize,
    choice: usize,
    parent: usize,
}

/// `Frontier_DP` — the two-objective generalization of [`opt_ind_con_dp`]:
/// the same interval recurrence, but the state carries a **Pareto label
/// set** of `(cost, size)` pairs instead of a scalar, so one sweep yields
/// the whole cost-vs-footprint frontier of the path.
///
/// The scalar DP's state is `(end position j, organization of the last
/// piece)`; as there, the boundary `CMD` term is folded into the preceding
/// piece's own cell (Definition 4.2), so nothing in a transition depends on
/// the *successor's* organization and the per-organization dimension
/// collapses into one label set per position — each label records its last
/// piece's organization, which is all reconstruction needs. A transition
/// closes a piece `S_{i,j}` under choice `X`, extending every label of
/// position `i - 1` by `(a(S_{i,j}, X), size(S_{i,j}, X))`; dominated
/// extensions are pruned immediately, so label sets stay frontier-sized.
///
/// On a size-free matrix ([`CostMatrix::from_values`]) every label set
/// collapses to [`opt_ind_con_dp`]'s scalar singleton optimum — same
/// tie-breaking (longest last piece, first organization column),
/// bit-identical costs and configurations — so the scalar DP is exactly
/// this function's size-blind specialization (pinned by the fixture and
/// property tests; the scalar recurrence keeps its own `O(n²·|Org|)`
/// implementation for the cost-only hot paths). Ties in cost between
/// configurations of different footprint keep the smaller footprint (the
/// dominance rule), so on sized matrices the frontier's cost optimum is
/// the cheapest-to-store among cost-optimal configurations.
pub fn frontier_dp(matrix: &CostMatrix) -> FrontierResult {
    use oic_cost::Org;
    let n = matrix.path_len();
    let mut choices: Vec<Choice> = Org::ALL.iter().copied().map(Choice::Index).collect();
    if matrix.has_no_index() {
        choices.push(Choice::NoIndex);
    }
    // labels[j]: the Pareto set over covers of 1..=j. labels[0] is the
    // empty-prefix seed.
    let mut labels: Vec<Vec<Label>> = Vec::with_capacity(n + 1);
    labels.push(vec![Label {
        cost: 0.0,
        size: 0.0,
        start: 0,
        choice: usize::MAX,
        parent: usize::MAX,
    }]);
    let mut evaluated = 0u64;
    let mut label_work = 0u64;
    for j in 1..=n {
        let mut raw: Vec<Label> = Vec::new();
        // Choice-major, then longer pieces first (i ascending): with the
        // keep-first-on-ties prune below this reproduces the scalar DP's
        // tie-breaking exactly (first organization column, longest last
        // piece), because the earliest generated label among equals wins.
        for (c, &choice) in choices.iter().enumerate() {
            for i in 1..=j {
                if labels[i - 1].is_empty() {
                    continue;
                }
                let sub = SubpathId { start: i, end: j };
                let piece_cost = matrix.choice_cost(sub, choice);
                evaluated += 1;
                if !piece_cost.is_finite() {
                    continue;
                }
                let piece_size = matrix.choice_size(sub, choice);
                for (pi, prev) in labels[i - 1].iter().enumerate() {
                    raw.push(Label {
                        cost: prev.cost + piece_cost,
                        size: prev.size + piece_size,
                        start: i,
                        choice: c,
                        parent: pi,
                    });
                    label_work += 1;
                }
            }
        }
        labels.push(pareto_prune(raw));
    }
    // Each surviving label of position n is one frontier point; walk the
    // parent chain to reconstruct its configuration.
    let points = labels[n]
        .iter()
        .map(|label| {
            let mut pairs = Vec::new();
            let mut j = n;
            let mut cur = *label;
            loop {
                pairs.push((
                    SubpathId {
                        start: cur.start,
                        end: j,
                    },
                    choices[cur.choice],
                ));
                if cur.start == 1 {
                    break;
                }
                j = cur.start - 1;
                cur = labels[j][cur.parent];
            }
            pairs.reverse();
            FrontierPoint {
                cost: label.cost,
                size: label.size,
                config: IndexConfiguration::new(pairs, n)
                    .expect("DP pieces concatenate to the full path"),
            }
        })
        .collect();
    FrontierResult {
        points,
        evaluated,
        labels: label_work,
        candidate_space: candidate_space_size(n),
    }
}

/// Pareto-prunes labels: sorted by cost, keep only strict improvements in
/// size. Equal `(cost, size)` keeps the earliest-generated label (the
/// scalar DP's tie-breaking); equal cost with different sizes keeps the
/// smaller size (it dominates).
fn pareto_prune(raw: Vec<Label>) -> Vec<Label> {
    let mut order: Vec<usize> = (0..raw.len()).collect();
    order.sort_by(|&a, &b| {
        raw[a]
            .cost
            .total_cmp(&raw[b].cost)
            .then(raw[a].size.total_cmp(&raw[b].size))
            .then(a.cmp(&b))
    });
    let mut out = Vec::new();
    let mut min_size = f64::INFINITY;
    for idx in order {
        if raw[idx].size < min_size {
            min_size = raw[idx].size;
            out.push(raw[idx]);
        }
    }
    // Sorted by cost ascending (the sort order), size strictly descending
    // (the sweep's keep rule).
    out
}

/// Exhaustive `(cost, size)` Pareto frontier over all `2^(n-1)`
/// recombinations × per-piece choices — the brute-force baseline
/// [`frontier_dp`] is verified against. Returns `(cost, size)` pairs, cost
/// ascending.
pub fn exhaustive_frontier(matrix: &CostMatrix) -> Vec<(f64, f64)> {
    use oic_cost::Org;
    let n = matrix.path_len();
    let mut choices: Vec<Choice> = Org::ALL.iter().copied().map(Choice::Index).collect();
    if matrix.has_no_index() {
        choices.push(Choice::NoIndex);
    }
    let prune_pairs = |mut pairs: Vec<(f64, f64)>| -> Vec<(f64, f64)> {
        pairs.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.total_cmp(&b.1)));
        let mut out: Vec<(f64, f64)> = Vec::new();
        let mut min_size = f64::INFINITY;
        for (c, s) in pairs {
            if s < min_size {
                min_size = s;
                out.push((c, s));
            }
        }
        out
    };
    let mut all: Vec<(f64, f64)> = Vec::new();
    for mask in 0..(1u64 << (n - 1)) {
        let mut acc = vec![(0.0f64, 0.0f64)];
        let mut start = 1usize;
        for pos in 1..=n {
            let cut = pos == n || (mask >> (pos - 1)) & 1 == 1;
            if !cut {
                continue;
            }
            let sub = SubpathId { start, end: pos };
            let mut next = Vec::new();
            for &choice in &choices {
                let c = matrix.choice_cost(sub, choice);
                if !c.is_finite() {
                    continue;
                }
                let s = matrix.choice_size(sub, choice);
                for &(ac, asz) in &acc {
                    next.push((ac + c, asz + s));
                }
            }
            acc = prune_pairs(next);
            start = pos + 1;
        }
        all.extend(acc);
    }
    prune_pairs(all)
}

struct Search<'a> {
    matrix: &'a CostMatrix,
    n: usize,
    best: Vec<(SubpathId, Choice)>,
    best_cost: f64,
    evaluated: u64,
    pruned: u64,
}

impl Search<'_> {
    fn descend(&mut self, start: usize, acc: f64, prefix: &mut Vec<(SubpathId, Choice)>) {
        // Longest-first, per the paper's walkthrough.
        for end in (start..=self.n).rev() {
            let sub = SubpathId { start, end };
            let (choice, cost) = self.matrix.min_cost(sub);
            let total = acc + cost;
            if end == self.n {
                // Completing piece: computing the sum is the evaluation.
                self.evaluated += 1;
                if total < self.best_cost {
                    self.best_cost = total;
                    self.best = prefix
                        .iter()
                        .copied()
                        .chain(std::iter::once((sub, choice)))
                        .collect();
                }
            } else if total >= self.best_cost {
                // “… the index configuration including S will not be
                // considered any longer since its processing cost will be
                // higher than the processing cost of the best one.”
                self.pruned += 1;
            } else {
                prefix.push((sub, choice));
                self.descend(end + 1, total, prefix);
                prefix.pop();
            }
        }
    }
}

/// Exhaustive baseline: enumerates all `2^(n-1)` recombinations, evaluating
/// each with the per-row minima. Used to verify branch and bound and for the
/// Section 5 complexity experiment.
pub fn exhaustive(matrix: &CostMatrix) -> SelectionResult {
    let n = matrix.path_len();
    let total = 1u64 << (n - 1);
    let mut best_cost = f64::INFINITY;
    let mut best: Vec<(SubpathId, Choice)> = Vec::new();
    for mask in 0..total {
        // Bit i set (i in 0..n-1) = a cut after position i+1.
        let mut parts = Vec::new();
        let mut start = 1usize;
        let mut cost = 0.0;
        for pos in 1..=n {
            let cut = pos == n || (mask >> (pos - 1)) & 1 == 1;
            if cut {
                let sub = SubpathId { start, end: pos };
                let (choice, c) = matrix.min_cost(sub);
                parts.push((sub, choice));
                cost += c;
                start = pos + 1;
            }
        }
        if cost < best_cost {
            best_cost = cost;
            best = parts;
        }
    }
    SelectionResult {
        best: IndexConfiguration::new(best, n).expect("masks cover the path"),
        cost: best_cost,
        evaluated: total,
        pruned: 0,
        candidate_space: total,
    }
}

/// CoPhy-style dominance pruning over a path's `(subpath rank ×
/// organization)` cell grid: a 3-bit mask per rank marking cells provably
/// absent from every optimum of [`opt_ind_con_dp`] on the full matrix —
/// under **any** sharing context, because covered cells bypass the mask
/// entirely (the advisor prices them before consulting it).
///
/// `query[r][o]` / `maint[r][o]` / `sizes[r][o]` are the query share, the
/// maintenance price and the page size of rank `r` under organization `o`;
/// `n` is the path length. Two strict arguments, both piece-local (the
/// DP's transition reads one `choice_cost` per piece, so replacing a
/// piece's cells never touches the rest of a configuration):
///
/// * **Org dominance** — prune `(r, o)` iff some other organization `o'`
///   at the same rank has `query[r][o] > query[r][o'] + maint[r][o']`
///   **and** `sizes[r][o'] ≤ sizes[r][o]`: even paying `o`'s query share
///   alone beats `o'`'s *full* price, and the swap never pays more pages.
///   The `(q + m)`-argmin organization always survives (`q ≤ q + m` as
///   `m ≥ 0`), so no rank is ever erased by this rule.
/// * **Rank elimination** — for a non-singleton rank, prune all three
///   cells iff `min_o query[r][o]` strictly exceeds the summed
///   singleton-replacement floor `Σ_{l ∈ r} min_o(query + maint)` at each
///   position's singleton rank, **and** the replacement's summed argmin
///   sizes fit under `min_o sizes[r][o]`: breaking the piece into
///   singletons is strictly cheaper than its query share alone and never
///   fatter. The replacement's argmin cells survive org dominance by the
///   first rule, and only this rule ever yields `0b111`.
///
/// Both bounds are **λ-uniform**: a struck cell prices as `q + m + λ·s`
/// for every `λ ≥ 0`, and its dominator's price `q' + m' + λ·s'` sits
/// strictly below it (`q > q' + m'` strictly on the cost axis, `s' ≤ s`
/// on the size axis) — so `cost + λ·size` can never win *or tie* for any
/// non-negative λ. The same swap shrinks both coordinates of any Pareto
/// label a struck cell could seed, so [`frontier_dp`]'s label sets are
/// unchanged too. Covered dominators only get cheaper (they pay `q'`
/// alone at size 0), which preserves the bound.
///
/// Strictness is what preserves **bit-identity**: a pruned cell's every DP
/// total is strictly above the prefix minimum at its column's position, so
/// it can neither win nor *tie* any `parent`/`prefix_best` entry on the
/// reconstruction chain — costs and tie-broken selections are unchanged,
/// not merely cost-equal (property-tested below and in `oic-sim`), at
/// λ = 0 and under every λ-priced sweep.
///
/// Bans are the one context the mask does not see: the advisor's eviction
/// trials re-validate per rank that no banned candidate participates in a
/// bound before applying it (`priced_matrix_inner`'s carve-outs).
pub fn prune_dominated(
    query: &[[f64; 3]],
    maint: &[[f64; 3]],
    sizes: &[[f64; 3]],
    n: usize,
) -> Vec<u8> {
    let ranks = SubpathId::count(n);
    debug_assert_eq!(query.len(), ranks);
    debug_assert_eq!(maint.len(), ranks);
    debug_assert_eq!(sizes.len(), ranks);
    // Full-price floor of each position's singleton rank, plus the size of
    // the argmin cell realizing it (ties broken toward the thinner cell,
    // then the first organization — deterministic, and the thinner the
    // replacement the more ranks the size condition lets us strike).
    let mut single = vec![(f64::INFINITY, f64::INFINITY); n + 1];
    for (l, slot) in single.iter_mut().enumerate().skip(1) {
        let r = SubpathId { start: l, end: l }.rank(n);
        for o in 0..3 {
            let full = query[r][o] + maint[r][o];
            if full < slot.0 || (full == slot.0 && sizes[r][o] < slot.1) {
                *slot = (full, sizes[r][o]);
            }
        }
    }
    (0..ranks)
        .map(|r| {
            let sub = SubpathId::from_rank(n, r);
            let mut mask = 0u8;
            for (o, &q) in query[r].iter().enumerate() {
                let dominated = (0..3).any(|alt| {
                    alt != o && q > query[r][alt] + maint[r][alt] && sizes[r][alt] <= sizes[r][o]
                });
                if dominated {
                    mask |= 1 << o;
                }
            }
            if sub.start < sub.end {
                let (repl_cost, repl_size) = (sub.start..=sub.end)
                    .map(|l| single[l])
                    .fold((0.0, 0.0), |(c, s), (fc, fs)| (c + fc, s + fs));
                let cheapest = (0..3).map(|o| query[r][o]).fold(f64::INFINITY, f64::min);
                let thinnest = (0..3).map(|o| sizes[r][o]).fold(f64::INFINITY, f64::min);
                if cheapest > repl_cost && repl_size <= thinnest {
                    mask = 0b111;
                }
            }
            mask
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use oic_cost::Org;

    fn sid(s: usize, e: usize) -> SubpathId {
        SubpathId { start: s, end: e }
    }

    /// A 3-position matrix where splitting wins.
    fn split_wins() -> CostMatrix {
        CostMatrix::from_values(
            3,
            &[
                (sid(1, 1), [1.0, 5.0, 5.0]),
                (sid(2, 2), [5.0, 1.0, 5.0]),
                (sid(3, 3), [5.0, 5.0, 1.0]),
                (sid(1, 2), [9.0, 9.0, 9.0]),
                (sid(2, 3), [9.0, 9.0, 9.0]),
                (sid(1, 3), [9.0, 9.0, 8.0]),
            ],
        )
    }

    /// A matrix where the whole path wins.
    fn whole_wins() -> CostMatrix {
        CostMatrix::from_values(
            3,
            &[
                (sid(1, 1), [4.0, 5.0, 5.0]),
                (sid(2, 2), [4.0, 5.0, 5.0]),
                (sid(3, 3), [4.0, 5.0, 5.0]),
                (sid(1, 2), [7.0, 9.0, 9.0]),
                (sid(2, 3), [7.0, 9.0, 9.0]),
                (sid(1, 3), [9.0, 9.0, 2.0]),
            ],
        )
    }

    #[test]
    fn bb_finds_three_way_split() {
        let r = opt_ind_con(&split_wins());
        assert_eq!(r.cost, 3.0);
        assert_eq!(r.best.degree(), 3);
        assert_eq!(r.best.pairs()[0], (sid(1, 1), Choice::Index(Org::Mx)));
        assert_eq!(r.best.pairs()[1], (sid(2, 2), Choice::Index(Org::Mix)));
        assert_eq!(r.best.pairs()[2], (sid(3, 3), Choice::Index(Org::Nix)));
    }

    #[test]
    fn bb_keeps_whole_path_when_best() {
        let r = opt_ind_con(&whole_wins());
        assert_eq!(r.cost, 2.0);
        assert_eq!(r.best.degree(), 1);
        // With PC_min = 2 after the first candidate, every proper prefix
        // (cost ≥ 4) is pruned immediately: only 1 evaluation.
        assert_eq!(r.evaluated, 1);
        assert_eq!(r.pruned, 2, "prefixes S1,2 and S1,1");
    }

    #[test]
    fn bb_matches_exhaustive() {
        for m in [split_wins(), whole_wins()] {
            let a = opt_ind_con(&m);
            let b = exhaustive(&m);
            assert_eq!(a.cost, b.cost);
            assert_eq!(a.best.pairs(), b.best.pairs());
            assert!(a.evaluated <= b.evaluated);
        }
    }

    #[test]
    fn exhaustive_candidate_count() {
        let r = exhaustive(&split_wins());
        assert_eq!(r.candidate_space, 4);
        assert_eq!(r.evaluated, 4);
    }

    #[test]
    fn single_position_path() {
        let m = CostMatrix::from_values(1, &[(sid(1, 1), [2.0, 3.0, 4.0])]);
        let r = opt_ind_con(&m);
        assert_eq!(r.cost, 2.0);
        assert_eq!(r.best.degree(), 1);
        assert_eq!(r.candidate_space, 1);
    }

    #[test]
    fn dp_matches_exhaustive_on_fixtures() {
        for m in [split_wins(), whole_wins(), crate::fig6::fig6_matrix()] {
            let dp = opt_ind_con_dp(&m);
            let ex = exhaustive(&m);
            assert!((dp.cost - ex.cost).abs() < 1e-9);
            assert_eq!(dp.best.pairs(), ex.best.pairs());
            // The configuration's cost re-derives from the matrix cells.
            let derived: f64 = dp
                .best
                .pairs()
                .iter()
                .map(|&(sub, choice)| match choice {
                    Choice::Index(org) => m.cost(sub, org),
                    Choice::NoIndex => unreachable!("no-index column not built"),
                })
                .sum();
            assert!((derived - dp.cost).abs() < 1e-9);
        }
    }

    #[test]
    fn dp_transition_count_is_polynomial() {
        let m = split_wins();
        let dp = opt_ind_con_dp(&m);
        // n(n+1)/2 pieces × 3 organizations.
        assert_eq!(dp.evaluated, 6 * 3);
        assert_eq!(dp.pruned, 0);
        assert_eq!(dp.candidate_space, 4);
    }

    #[test]
    fn dp_single_position_path() {
        let m = CostMatrix::from_values(1, &[(sid(1, 1), [2.0, 3.0, 4.0])]);
        let r = opt_ind_con_dp(&m);
        assert_eq!(r.cost, 2.0);
        assert_eq!(r.best.pairs(), &[(sid(1, 1), Choice::Index(Org::Mx))]);
    }

    /// A 3-position matrix with a real cost-vs-size tension: the cheap
    /// whole-path NIX is fat, the per-position MX split is lean but slower.
    fn tension() -> CostMatrix {
        CostMatrix::from_values_with_sizes(
            3,
            &[
                (sid(1, 1), [4.0, 5.0, 6.0], [10.0, 12.0, 20.0]),
                (sid(2, 2), [4.0, 5.0, 6.0], [10.0, 12.0, 20.0]),
                (sid(3, 3), [4.0, 5.0, 6.0], [10.0, 12.0, 20.0]),
                (sid(1, 2), [9.0, 8.0, 7.0], [25.0, 30.0, 60.0]),
                (sid(2, 3), [9.0, 8.0, 7.0], [25.0, 30.0, 60.0]),
                (sid(1, 3), [9.0, 9.0, 2.0], [40.0, 50.0, 100.0]),
            ],
        )
    }

    #[test]
    fn frontier_matches_exhaustive_on_fixtures() {
        for m in [
            split_wins(),
            whole_wins(),
            tension(),
            crate::fig6::fig6_matrix(),
        ] {
            let f = frontier_dp(&m);
            let ex = exhaustive_frontier(&m);
            assert_eq!(f.points.len(), ex.len(), "frontier cardinality");
            for (p, &(c, s)) in f.points.iter().zip(&ex) {
                assert!((p.cost - c).abs() < 1e-9, "{} vs {c}", p.cost);
                assert!((p.size - s).abs() < 1e-9, "{} vs {s}", p.size);
                // Each point's (cost, size) re-derives from its config.
                let derived_cost: f64 = p
                    .config
                    .pairs()
                    .iter()
                    .map(|&(sub, ch)| m.choice_cost(sub, ch))
                    .sum();
                let derived_size = m.configuration_size(&p.config);
                assert!((derived_cost - p.cost).abs() < 1e-9);
                assert!((derived_size - p.size).abs() < 1e-9);
            }
            // Frontier shape: cost strictly ascending, size strictly
            // descending.
            for w in f.points.windows(2) {
                assert!(w[0].cost < w[1].cost);
                assert!(w[0].size > w[1].size);
            }
        }
    }

    #[test]
    fn frontier_min_cost_equals_scalar_dp() {
        for m in [
            split_wins(),
            whole_wins(),
            tension(),
            crate::fig6::fig6_matrix(),
        ] {
            let f = frontier_dp(&m);
            let dp = opt_ind_con_dp(&m);
            assert_eq!(f.min_cost().cost.to_bits(), dp.cost.to_bits());
            assert_eq!(f.min_cost().config.pairs(), dp.best.pairs());
            assert_eq!(f.evaluated, dp.evaluated);
        }
    }

    #[test]
    fn frontier_collapses_to_singletons_without_sizes() {
        // Size-free matrices: every label set is the scalar optimum, so the
        // frontier has exactly one point and no extra label work beyond one
        // extension per priced piece.
        let m = split_wins();
        let f = frontier_dp(&m);
        assert_eq!(f.points.len(), 1);
        assert_eq!(f.labels, f.evaluated);
    }

    #[test]
    fn within_budget_picks_the_cheapest_fitting_point() {
        let m = tension();
        let f = frontier_dp(&m);
        // Unconstrained: whole-path NIX, cost 2, 100 pages.
        assert_eq!(f.min_cost().cost, 2.0);
        assert_eq!(f.min_cost().size, 100.0);
        // 100+ pages: the optimum fits.
        assert_eq!(f.within_budget(120.0).unwrap().cost, 2.0);
        // Under 100: forced off the whole-path; the three-way MX split
        // (cost 12, 30 pages) is the only lean alternative on this matrix.
        let p = f.within_budget(99.0).unwrap();
        assert!(p.cost > 2.0 && p.size <= 99.0);
        assert_eq!(f.within_budget(30.0).unwrap().size, 30.0);
        // Below the leanest configuration: infeasible.
        assert!(f.within_budget(29.0).is_none());
        // The budgeted answer always matches a brute-force scan.
        for budget in [29.0, 30.0, 45.0, 99.0, 100.0, 1e9] {
            let ex_best = exhaustive_frontier(&m)
                .into_iter()
                .filter(|&(_, s)| s <= budget)
                .map(|(c, _)| c)
                .fold(f64::INFINITY, f64::min);
            match f.within_budget(budget) {
                Some(p) => assert!((p.cost - ex_best).abs() < 1e-9, "budget {budget}"),
                None => assert!(ex_best.is_infinite(), "budget {budget}"),
            }
        }
    }

    #[test]
    fn frontier_handles_no_index_column() {
        // A no-index choice is free in pages: with the column built the
        // all-no-index configuration (size 0) anchors the frontier's lean
        // end.
        let m = fixtures_matrix();
        let f = frontier_dp(&m);
        let last = f.points.last().unwrap();
        assert_eq!(last.size, 0.0);
        assert!(last
            .config
            .pairs()
            .iter()
            .all(|&(_, c)| c == Choice::NoIndex));
        let ex = exhaustive_frontier(&m);
        assert_eq!(f.points.len(), ex.len());
    }

    /// A sized matrix with a no-index column, via the real model.
    fn fixtures_matrix() -> CostMatrix {
        use oic_cost::characteristics::example51;
        use oic_cost::{CostModel, CostParams};
        use oic_schema::fixtures;
        use oic_workload::example51_load;
        let (schema, _) = fixtures::paper_schema();
        let (path, chars) = example51(&schema);
        let ld = example51_load(&schema, &path);
        let model = CostModel::new(&schema, &path, &chars, CostParams::default());
        CostMatrix::build_with_no_index(&model, &ld)
    }

    #[test]
    fn frontier_single_position_path() {
        // n = 1: the only cover is S1,1 with one of the three
        // organizations; the frontier is the Pareto set of those three
        // (cost, size) cells.
        let m = CostMatrix::from_values_with_sizes(
            1,
            &[(sid(1, 1), [5.0, 4.0, 3.0], [10.0, 20.0, 30.0])],
        );
        let f = frontier_dp(&m);
        // All three cells are Pareto-optimal here (cost descends as size
        // ascends across Mx→Mix→Nix).
        assert_eq!(f.points.len(), 3);
        assert_eq!(f.min_cost().cost, 3.0);
        assert_eq!(f.min_cost().size, 30.0);
        assert_eq!(f.points.last().unwrap().size, 10.0);
        let ex = exhaustive_frontier(&m);
        assert_eq!(f.points.len(), ex.len());
        for (p, (c, s)) in f.points.iter().zip(ex) {
            assert_eq!((p.cost, p.size), (c, s));
            assert_eq!(p.config.degree(), 1);
        }
        // The scalar DP agrees bit-for-bit on the cost optimum.
        let dp = opt_ind_con_dp(&m);
        assert_eq!(f.min_cost().cost.to_bits(), dp.cost.to_bits());
        assert_eq!(f.min_cost().config.pairs(), dp.best.pairs());
        // A dominated cell never surfaces: make Mix worse in both axes.
        let m = CostMatrix::from_values_with_sizes(
            1,
            &[(sid(1, 1), [5.0, 9.0, 3.0], [10.0, 99.0, 30.0])],
        );
        let f = frontier_dp(&m);
        assert_eq!(f.points.len(), 2, "Mix is dominated by both neighbours");
    }

    #[test]
    fn frontier_with_all_zero_query_rates_is_maintenance_only() {
        // α = 0 everywhere: the load is pure maintenance. The matrix still
        // prices every cell (insert/delete traffic), the frontier still
        // has its full shape, and it matches the exhaustive baseline.
        use oic_cost::characteristics::example51;
        use oic_cost::{CostModel, CostParams};
        use oic_schema::fixtures;
        use oic_workload::{LoadDistribution, Triplet};
        let (schema, _) = fixtures::paper_schema();
        let (path, chars) = example51(&schema);
        let ld = LoadDistribution::build(&schema, &path, |_| Triplet::new(0.0, 0.1, 0.1));
        let model = CostModel::new(&schema, &path, &chars, CostParams::default());
        let m = CostMatrix::build(&model, &ld);
        let f = frontier_dp(&m);
        assert!(!f.points.is_empty());
        assert!(f.min_cost().cost > 0.0, "maintenance is not free");
        let ex = exhaustive_frontier(&m);
        assert_eq!(f.points.len(), ex.len());
        for (p, (c, s)) in f.points.iter().zip(ex) {
            assert!((p.cost - c).abs() < 1e-9 && (p.size - s).abs() < 1e-9);
        }
        // With the no-index column built, zero queries make "index
        // nothing" free — the frontier's lean anchor at (0 cost, 0 pages),
        // which is also the scalar optimum. One point: it dominates all.
        let m = CostMatrix::build_with_no_index(&model, &ld);
        let f = frontier_dp(&m);
        assert_eq!(f.points.len(), 1);
        let only = &f.points[0];
        assert_eq!((only.cost, only.size), (0.0, 0.0));
        assert!(only
            .config
            .pairs()
            .iter()
            .all(|&(_, c)| c == Choice::NoIndex));
        let dp = opt_ind_con_dp(&m);
        assert_eq!(dp.cost, 0.0);
        assert_eq!(only.config.pairs(), dp.best.pairs());
    }

    #[test]
    fn frontier_breaks_exact_cost_ties_toward_the_leaner_organization() {
        // Every organization of every subpath costs the same; only sizes
        // differ. Dominance must collapse each label set to the leanest
        // spelling, and the single frontier point is the min-size cover.
        let m = CostMatrix::from_values_with_sizes(
            2,
            &[
                (sid(1, 1), [4.0, 4.0, 4.0], [12.0, 10.0, 11.0]),
                (sid(2, 2), [4.0, 4.0, 4.0], [7.0, 9.0, 8.0]),
                (sid(1, 2), [8.0, 8.0, 8.0], [20.0, 16.0, 18.0]),
            ],
        );
        let f = frontier_dp(&m);
        assert_eq!(f.points.len(), 1, "equal costs: one Pareto point");
        let p = &f.points[0];
        assert_eq!(p.cost, 8.0);
        assert_eq!(p.size, 16.0, "whole-path Mix is the leanest 8.0 cover");
        assert_eq!(
            p.config.pairs(),
            &[(sid(1, 2), Choice::Index(Org::Mix))],
            "tie broken toward the leaner organization"
        );
        let ex = exhaustive_frontier(&m);
        assert_eq!(ex, vec![(8.0, 16.0)]);
        // Fully degenerate ties — equal cost *and* equal size — keep the
        // scalar DP's tie-breaking: longest last piece, first organization
        // column (Mx).
        let m = CostMatrix::from_values_with_sizes(
            2,
            &[
                (sid(1, 1), [4.0, 4.0, 4.0], [5.0, 5.0, 5.0]),
                (sid(2, 2), [4.0, 4.0, 4.0], [5.0, 5.0, 5.0]),
                (sid(1, 2), [8.0, 8.0, 8.0], [10.0, 10.0, 10.0]),
            ],
        );
        let f = frontier_dp(&m);
        let dp = opt_ind_con_dp(&m);
        assert_eq!(f.points.len(), 1);
        assert_eq!(f.points[0].config.pairs(), dp.best.pairs());
        assert_eq!(
            f.points[0].config.pairs(),
            &[(sid(1, 2), Choice::Index(Org::Mx))]
        );
    }

    #[test]
    fn budget_exactly_on_a_frontier_knee_takes_the_knee() {
        let m = tension();
        let f = frontier_dp(&m);
        assert!(f.points.len() >= 2, "the fixture has a real trade-off");
        for (k, p) in f.points.iter().enumerate() {
            // A budget exactly equal to a knee's footprint admits that
            // knee (≤, not <): no page of slack is required.
            let hit = f.within_budget(p.size).expect("the knee itself fits");
            assert_eq!(hit.cost.to_bits(), p.cost.to_bits(), "knee {k}");
            assert_eq!(hit.size.to_bits(), p.size.to_bits(), "knee {k}");
            // One ulp under the knee falls through to the next point (or
            // to infeasibility after the leanest knee).
            let under = f.within_budget(p.size - p.size.abs() * 1e-15 - f64::MIN_POSITIVE);
            match f.points.get(k + 1) {
                Some(next) => {
                    let under = under.expect("a leaner point exists");
                    assert_eq!(under.cost.to_bits(), next.cost.to_bits(), "below knee {k}");
                }
                None => assert!(under.is_none(), "below the leanest point: infeasible"),
            }
        }
    }

    #[test]
    fn candidate_space_saturates() {
        assert_eq!(candidate_space_size(1), 1);
        assert_eq!(candidate_space_size(4), 8);
        assert_eq!(candidate_space_size(64), 1u64 << 63);
        assert_eq!(candidate_space_size(65), u64::MAX);
        assert_eq!(candidate_space_size(200), u64::MAX);
    }

    #[test]
    fn dp_equals_bb_on_random_matrices() {
        let mut seed = 0xC0FFEE_u64;
        let mut next = move || {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            (seed % 1000) as f64 / 100.0 + 0.1
        };
        for n in 2..=10 {
            let mut values = Vec::new();
            for len in 1..=n {
                for start in 1..=(n - len + 1) {
                    values.push((sid(start, start + len - 1), [next(), next(), next()]));
                }
            }
            let m = CostMatrix::from_values(n, &values);
            let dp = opt_ind_con_dp(&m);
            let bb = opt_ind_con(&m);
            assert!(
                (dp.cost - bb.cost).abs() < 1e-9,
                "n={n}: dp {} vs bb {}",
                dp.cost,
                bb.cost
            );
        }
    }

    #[test]
    fn prune_dominated_strikes_dominated_orgs_and_keeps_argmins() {
        // Rank (1,1): Mx full price 2.0; Mix query 5.0 > 2.0 (pruned),
        // Nix query 1.5 ≤ 2.0 (kept). Argmin Mx always survives.
        let query = vec![
            [1.0, 5.0, 1.5],  // (1,1)
            [1.0, 1.0, 1.0],  // (2,2)
            [0.5, 0.6, 20.0], // (1,2): Nix query 20 > Mx full 1.5
        ];
        let maint = vec![
            [1.0, 1.0, 1.0], // (1,1): floor = 2.0 (Mx)
            [1.0, 1.0, 1.0],
            [1.0, 1.0, 1.0],
        ];
        let flat = vec![[1.0; 3]; 3];
        let masks = prune_dominated(&query, &maint, &flat, 2);
        assert_eq!(masks[sid(1, 1).rank(2)], 0b010, "Mix dominated at (1,1)");
        assert_eq!(masks[sid(2, 2).rank(2)], 0, "three-way tie keeps all");
        assert_eq!(masks[sid(1, 2).rank(2)], 0b100, "Nix dominated at (1,2)");
        // The λ guard: when every would-be dominator is *fatter* than the
        // dominated cell, a large enough λ could flip the comparison, so
        // the strike is withheld.
        let fat_dominators = vec![
            [9.0, 0.5, 9.0], // (1,1): Mix is the thinnest cell
            [1.0, 1.0, 1.0],
            [9.0, 9.0, 0.5], // (1,2): Nix is the thinnest cell
        ];
        let masks = prune_dominated(&query, &maint, &fat_dominators, 2);
        assert_eq!(masks[sid(1, 1).rank(2)], 0, "thin Mix survives every λ");
        assert_eq!(masks[sid(1, 2).rank(2)], 0, "thin Nix survives every λ");
    }

    #[test]
    fn prune_dominated_eliminates_ranks_beaten_by_singleton_floors() {
        // Singleton floors: 2.0 + 2.0 = 4.0. Rank (1,2)'s cheapest query
        // share alone is 10.0 > 4.0, and the replacement pair's pages
        // (1.0 + 1.0 = 2.0) fit under the rank's thinnest cell (2.0): the
        // whole rank is eliminated for every λ ≥ 0.
        let query = vec![[1.0, 1.5, 1.2], [1.0, 1.1, 1.3], [10.0, 11.0, 12.0]];
        let maint = vec![[1.0, 1.0, 1.0], [1.0, 1.0, 1.0], [0.0, 0.0, 0.0]];
        let sizes = vec![[1.0; 3], [1.0; 3], [2.0; 3]];
        let masks = prune_dominated(&query, &maint, &sizes, 2);
        assert_eq!(masks[sid(1, 2).rank(2)], 0b111, "rank eliminated");
        // Singleton ranks are never rank-eliminated, whatever their price.
        assert_ne!(masks[sid(1, 1).rank(2)], 0b111);
        assert_ne!(masks[sid(2, 2).rank(2)], 0b111);
        // The λ guard: a singleton replacement fatter than the rank's
        // thinnest cell could lose at large λ, so elimination is withheld
        // (the 2.0 + 2.0 = 4.0 replacement pages exceed the rank's 1.0).
        let fat_singletons = vec![[2.0; 3], [2.0; 3], [1.0, 1.0, 1.0]];
        let masks = prune_dominated(&query, &maint, &fat_singletons, 2);
        assert_ne!(masks[sid(1, 2).rank(2)], 0b111, "fat replacement kept");
    }

    /// The advisor-facing contract: masking pruned cells to `INFINITY`
    /// leaves the DP's cost *bits* and its tie-broken selection unchanged
    /// — on the uncovered pricing, under random coverage (covered cells
    /// pay query only and bypass the mask, exactly as
    /// `priced_matrix_inner` prices them), and under every λ-priced
    /// objective `q + m + λ·s` the budgeted sweeps construct.
    #[test]
    fn masked_dp_is_bit_identical_on_random_grids() {
        let mut seed = 0xDEC0DE_u64;
        let mut rng = move || {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            seed
        };
        for n in 2..=8 {
            for trial in 0..8 {
                let ranks = SubpathId::count(n);
                let mut query = Vec::with_capacity(ranks);
                let mut maint = Vec::with_capacity(ranks);
                let mut sizes = Vec::with_capacity(ranks);
                for _ in 0..ranks {
                    let cell = |r: &mut dyn FnMut() -> u64| (r() % 1000) as f64 / 100.0;
                    query.push([cell(&mut rng), cell(&mut rng), cell(&mut rng)]);
                    maint.push([cell(&mut rng), cell(&mut rng), cell(&mut rng)]);
                    sizes.push([cell(&mut rng), cell(&mut rng), cell(&mut rng)]);
                }
                let masks = prune_dominated(&query, &maint, &sizes, n);
                // Random coverage (none on even trials).
                let covered: Vec<u8> = (0..ranks)
                    .map(|_| if trial % 2 == 0 { 0 } else { (rng() % 8) as u8 })
                    .collect();
                for lambda in [0.0, 0.7, 13.0] {
                    let price = |with_mask: bool| {
                        let values: Vec<(SubpathId, [f64; 3])> = (0..ranks)
                            .map(|r| {
                                let mut cell = [0.0; 3];
                                for o in 0..3 {
                                    cell[o] = if covered[r] & (1 << o) != 0 {
                                        query[r][o]
                                    } else if with_mask && masks[r] & (1 << o) != 0 {
                                        f64::INFINITY
                                    } else {
                                        query[r][o] + maint[r][o] + lambda * sizes[r][o]
                                    };
                                }
                                (SubpathId::from_rank(n, r), cell)
                            })
                            .collect();
                        opt_ind_con_dp(&CostMatrix::from_values(n, &values))
                    };
                    let full = price(false);
                    let masked = price(true);
                    assert_eq!(
                        full.cost.to_bits(),
                        masked.cost.to_bits(),
                        "n={n} trial={trial} λ={lambda}: cost {} vs {}",
                        full.cost,
                        masked.cost
                    );
                    assert_eq!(
                        full.best.pairs(),
                        masked.best.pairs(),
                        "n={n} trial={trial} λ={lambda}: selections diverged"
                    );
                }
            }
        }
    }

    #[test]
    fn bb_equals_exhaustive_on_random_matrices() {
        // Deterministic pseudo-random matrices across path lengths.
        let mut seed = 0x9E3779B97F4A7C15u64;
        let mut next = move || {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            (seed % 1000) as f64 / 100.0 + 0.1
        };
        for n in 2..=8 {
            let mut values = Vec::new();
            for len in 1..=n {
                for start in 1..=(n - len + 1) {
                    values.push((sid(start, start + len - 1), [next(), next(), next()]));
                }
            }
            let m = CostMatrix::from_values(n, &values);
            let a = opt_ind_con(&m);
            let b = exhaustive(&m);
            assert!(
                (a.cost - b.cost).abs() < 1e-9,
                "n={n}: bb {} vs exhaustive {}",
                a.cost,
                b.cost
            );
            assert!(a.evaluated <= b.evaluated);
        }
    }
}
