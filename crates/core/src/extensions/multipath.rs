//! Multi-path index configuration (Section 6 future work).
//!
//! Several database operations lead to several paths, which may overlap: a
//! path may be a subpath of another, or they may share a middle segment.
//! This extension selects an optimal configuration per path and then
//! *consolidates*: subpaths that are physically identical across paths —
//! same class/attribute step sequence, same organization — become a single
//! index, whose maintenance is paid once instead of once per path.
//!
//! Processing cost is linear in the workload triplets (every `PC` term is
//! `frequency × unit cost`), so the maintenance share of a duplicated index
//! can be computed exactly by re-pricing the subpath under a
//! maintenance-only load; consolidation subtracts that share for all but
//! one owner of each physical index.

use crate::select::{opt_ind_con, SelectionResult};
use crate::{pc, Choice, CostMatrix};
use oic_cost::{CostModel, Org};
use oic_schema::{AttrId, ClassId, Path, Schema, SubpathId};
use oic_workload::LoadDistribution;

/// Physical identity of an index allocation: the organization plus the
/// exact `(class, attribute)` steps it covers. Steps carry the *interned*
/// attribute id from the schema layer — a `Copy` key — so signatures are
/// built and compared without cloning attribute names.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct IndexSignature {
    /// The allocation choice.
    pub choice: Choice,
    /// `(class, interned attribute)` per step.
    pub steps: Vec<(ClassId, AttrId)>,
}

/// Computes the signature of `sub` within `path`.
pub fn signature(path: &Path, sub: SubpathId, choice: Choice) -> IndexSignature {
    IndexSignature {
        choice,
        steps: path.step_keys(sub),
    }
}

/// One path's inputs for the multi-path selection.
pub struct PathCase<'a> {
    /// The path.
    pub path: &'a Path,
    /// The analytic model bound to the path.
    pub model: CostModel<'a>,
    /// The workload on the path.
    pub ld: &'a LoadDistribution,
}

/// A consolidated physical index shared by several paths.
#[derive(Debug, Clone)]
pub struct SharedIndex {
    /// Physical identity.
    pub signature: IndexSignature,
    /// Indices into the input `cases` slice.
    pub owners: Vec<usize>,
    /// Maintenance cost saved by keeping one copy (sum over all owners but
    /// the most update-loaded one).
    pub saving: f64,
}

/// The multi-path plan.
#[derive(Debug)]
pub struct MultiPathPlan {
    /// Per-path optimal selection, independent of the others.
    pub per_path: Vec<SelectionResult>,
    /// Consolidated shared indexes.
    pub shared: Vec<SharedIndex>,
    /// Σ of the independent costs.
    pub independent_cost: f64,
    /// Independent cost minus consolidation savings.
    pub consolidated_cost: f64,
}

/// Selects per-path optima, then consolidates: subpaths spanning identical
/// `(class, attribute)` steps across paths are *harmonized* — for each
/// candidate organization the combined cost (duplicated maintenance paid
/// once) is compared against the independent choices, and the cheapest
/// option wins. Harmonization can overrule a path's locally optimal
/// organization when sharing pays for the difference.
pub fn optimize(_schema: &Schema, cases: &[PathCase<'_>]) -> MultiPathPlan {
    let mut per_path = Vec::with_capacity(cases.len());
    for case in cases {
        let matrix = CostMatrix::build(&case.model, case.ld);
        per_path.push(opt_ind_con(&matrix));
    }
    let independent_cost: f64 = per_path.iter().map(|r| r.cost).sum();

    // Group allocations by step sequence (organization-agnostic).
    use std::collections::HashMap;
    type Owners = Vec<(usize, SubpathId, Choice)>;
    let mut groups: HashMap<Vec<(ClassId, AttrId)>, Owners> = HashMap::new();
    for (i, (case, result)) in cases.iter().zip(&per_path).enumerate() {
        for &(sub, choice) in result.best.pairs() {
            if choice == Choice::NoIndex {
                continue;
            }
            let steps = signature(case.path, sub, choice).steps;
            groups.entry(steps).or_default().push((i, sub, choice));
        }
    }

    let mut shared = Vec::new();
    let mut total_saving = 0.0;
    for (steps, owners) in groups {
        if owners.len() < 2 {
            continue;
        }
        let independent: f64 = owners
            .iter()
            .map(|&(i, sub, choice)| pc::processing_cost(&cases[i].model, cases[i].ld, sub, choice))
            .sum();
        // Best harmonized organization: everyone adopts `org`; the
        // duplicated maintenance shares are paid only by the heaviest owner.
        let mut best: Option<(Org, f64)> = None;
        for org in Org::ALL {
            let choice = Choice::Index(org);
            let full: f64 = owners
                .iter()
                .map(|&(i, sub, _)| pc::processing_cost(&cases[i].model, cases[i].ld, sub, choice))
                .sum();
            let mut maint: Vec<f64> = owners
                .iter()
                .map(|&(i, sub, _)| {
                    let m = cases[i].ld.maintenance_only();
                    pc::processing_cost(&cases[i].model, &m, sub, choice)
                })
                .collect();
            maint.sort_by(|a, b| b.total_cmp(a));
            let duplicated: f64 = maint[1..].iter().sum();
            let harmonized = full - duplicated;
            if best.map_or(true, |(_, c)| harmonized < c) {
                best = Some((org, harmonized));
            }
        }
        let (org, harmonized) = best.expect("three organizations evaluated");
        if harmonized < independent - 1e-12 {
            let saving = independent - harmonized;
            total_saving += saving;
            shared.push(SharedIndex {
                signature: IndexSignature {
                    choice: Choice::Index(org),
                    steps,
                },
                owners: owners.iter().map(|&(i, _, _)| i).collect(),
                saving,
            });
        }
    }

    MultiPathPlan {
        per_path,
        shared,
        independent_cost,
        consolidated_cost: independent_cost - total_saving,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oic_cost::characteristics::{example51, ClassStats, PathCharacteristics};
    use oic_cost::CostParams;
    use oic_schema::fixtures;
    use oic_workload::example51_load;

    #[test]
    fn overlapping_paths_consolidate() {
        let (schema, _) = fixtures::paper_schema();
        // Pexa = Per.owns.man.divs.name and Pe = Per.owns.man.name share the
        // Per.owns.man prefix (positions 1–2 in both).
        let (pexa, chars_a) = example51(&schema);
        let ld_a = example51_load(&schema, &pexa);
        let pe = fixtures::paper_path_pe(&schema);
        let chars_b = PathCharacteristics::build(&schema, &pe, |c| {
            // Reuse the Figure 7 statistics for the shared classes; Company's
            // ending attribute (name) has 1000 distinct values.
            let name = schema.class_name(c).to_string();
            match name.as_str() {
                "Person" => ClassStats::new(200_000.0, 20_000.0, 1.0),
                "Vehicle" => ClassStats::new(10_000.0, 5_000.0, 3.0),
                "Bus" | "Truck" => ClassStats::new(5_000.0, 2_500.0, 2.0),
                "Company" => ClassStats::new(1_000.0, 1_000.0, 1.0),
                _ => ClassStats::new(1.0, 1.0, 1.0),
            }
        });
        let ld_b = example51_load(&schema, &pe);
        let model_a = CostModel::new(&schema, &pexa, &chars_a, CostParams::default());
        let model_b = CostModel::new(&schema, &pe, &chars_b, CostParams::default());
        let cases = vec![
            PathCase {
                path: &pexa,
                model: model_a,
                ld: &ld_a,
            },
            PathCase {
                path: &pe,
                model: model_b,
                ld: &ld_b,
            },
        ];
        let plan = optimize(&schema, &cases);
        assert_eq!(plan.per_path.len(), 2);
        assert!(plan.independent_cost > 0.0);
        assert!(plan.consolidated_cost <= plan.independent_cost + 1e-9);
        // Whether consolidation fires depends on both optima choosing the
        // same physical prefix; when it does, the saving must be positive.
        for s in &plan.shared {
            assert!(s.owners.len() >= 2);
            assert!(s.saving >= 0.0);
        }
    }

    #[test]
    fn disjoint_paths_share_nothing() {
        let (schema, _) = fixtures::paper_schema();
        let (pexa, chars_a) = example51(&schema);
        let ld_a = example51_load(&schema, &pexa);
        // Comp.divs.name is disjoint from Veh.man.name's prefix... use two
        // different single-class paths to guarantee disjoint signatures.
        let p_div = oic_schema::Path::parse(&schema, "Division", &["name"]).unwrap();
        let chars_d =
            PathCharacteristics::build(&schema, &p_div, |_| ClassStats::new(1_000.0, 1_000.0, 1.0));
        let ld_d = example51_load(&schema, &pexa); // reuse triplets? needs matching positions
                                                   // Build a proper LD for the one-position path.
        let ld_d = {
            let _ = ld_d;
            oic_workload::LoadDistribution::uniform(
                &schema,
                &p_div,
                oic_workload::Triplet::new(0.5, 0.1, 0.1),
            )
        };
        let model_a = CostModel::new(&schema, &pexa, &chars_a, CostParams::default());
        let model_d = CostModel::new(&schema, &p_div, &chars_d, CostParams::default());
        let cases = vec![
            PathCase {
                path: &pexa,
                model: model_a,
                ld: &ld_a,
            },
            PathCase {
                path: &p_div,
                model: model_d,
                ld: &ld_d,
            },
        ];
        let plan = optimize(&schema, &cases);
        // Pexa's optimum may include a Division.name piece — in that case
        // they legitimately share it. Just verify consistency.
        assert!(plan.consolidated_cost <= plan.independent_cost + 1e-9);
    }

    #[test]
    fn signature_equality_is_structural() {
        let (schema, _) = fixtures::paper_schema();
        let pexa = fixtures::paper_path_pexa(&schema);
        let pe = fixtures::paper_path_pe(&schema);
        let a = signature(
            &pexa,
            SubpathId { start: 1, end: 2 },
            Choice::Index(oic_cost::Org::Nix),
        );
        let b = signature(
            &pe,
            SubpathId { start: 1, end: 2 },
            Choice::Index(oic_cost::Org::Nix),
        );
        assert_eq!(a, b, "same classes and attributes ⇒ same physical index");
        let c = signature(
            &pe,
            SubpathId { start: 1, end: 2 },
            Choice::Index(oic_cost::Org::Mx),
        );
        assert_ne!(a, c, "different organization ⇒ different index");
    }
}
