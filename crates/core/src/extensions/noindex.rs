//! The “no index on a subpath” extension (Section 6).
//!
//! An unindexed subpath costs nothing to maintain but forces every query
//! that crosses it to scan the class heaps in its scope. For read-light,
//! update-heavy boundary classes this can beat every index organization;
//! the extension simply adds a fourth column to the cost matrix and lets
//! `Opt_Ind_Con` choose.

use crate::select::{opt_ind_con, SelectionResult};
use crate::{Choice, CostMatrix};
use oic_cost::CostModel;
use oic_workload::LoadDistribution;

/// Result of comparing selection with and without the no-index option.
#[derive(Debug, Clone)]
pub struct NoIndexAnalysis {
    /// Optimum restricted to real indexes (the paper's algorithm).
    pub indexed_only: SelectionResult,
    /// Optimum with the no-index column available.
    pub with_no_index: SelectionResult,
}

impl NoIndexAnalysis {
    /// Whether the extension changed the optimum.
    pub fn helps(&self) -> bool {
        self.with_no_index.cost < self.indexed_only.cost - 1e-12
    }

    /// Subpaths the extended optimum leaves unindexed.
    pub fn unindexed_subpaths(&self) -> Vec<oic_schema::SubpathId> {
        self.with_no_index
            .best
            .pairs()
            .iter()
            .filter(|(_, c)| *c == Choice::NoIndex)
            .map(|(s, _)| *s)
            .collect()
    }
}

/// Runs the selection twice — with and without the no-index column.
pub fn analyze(model: &CostModel<'_>, ld: &LoadDistribution) -> NoIndexAnalysis {
    let plain = CostMatrix::build(model, ld);
    let extended = CostMatrix::build_with_no_index(model, ld);
    NoIndexAnalysis {
        indexed_only: opt_ind_con(&plain),
        with_no_index: opt_ind_con(&extended),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oic_cost::characteristics::example51;
    use oic_cost::CostParams;
    use oic_schema::fixtures;
    use oic_workload::{example51_load, LoadDistribution, Triplet};

    #[test]
    fn extension_never_hurts() {
        let (schema, _) = fixtures::paper_schema();
        let (path, chars) = example51(&schema);
        let ld = example51_load(&schema, &path);
        let model = CostModel::new(&schema, &path, &chars, CostParams::default());
        let a = analyze(&model, &ld);
        assert!(a.with_no_index.cost <= a.indexed_only.cost + 1e-9);
    }

    #[test]
    fn update_only_workload_drops_indexes() {
        let (schema, _) = fixtures::paper_schema();
        let (path, chars) = example51(&schema);
        // No queries at all: any index is pure overhead.
        let ld = LoadDistribution::uniform(&schema, &path, Triplet::new(0.0, 1.0, 1.0));
        let model = CostModel::new(&schema, &path, &chars, CostParams::default());
        let a = analyze(&model, &ld);
        assert!(a.helps());
        assert!(
            !a.unindexed_subpaths().is_empty(),
            "some subpath should go unindexed"
        );
        assert!(a.with_no_index.cost.abs() < 1e-9, "no queries → zero cost");
    }

    #[test]
    fn query_only_workload_keeps_indexes() {
        let (schema, _) = fixtures::paper_schema();
        let (path, chars) = example51(&schema);
        let ld = LoadDistribution::uniform(&schema, &path, Triplet::new(1.0, 0.0, 0.0));
        let model = CostModel::new(&schema, &path, &chars, CostParams::default());
        let a = analyze(&model, &ld);
        assert!(!a.helps(), "scans are far worse than any index");
        assert!(a.unindexed_subpaths().is_empty());
    }
}
