//! Section 6 extensions: the no-index subpath option and multi-path
//! configuration selection (“a topic for further research is the extension
//! of the algorithm such that it may generate index configurations for n
//! paths … furthermore, we will incorporate in the algorithm the
//! possibility that no index will be allocated on a subpath”).

pub mod multipath;
pub mod noindex;
