//! Property-based tests: the object heap behaves like a map with page
//! accounting, under random insert/get/delete interleavings.

use oic_schema::fixtures::paper_schema;
use oic_storage::{Object, ObjectStore, Oid, SimStore, Value};
use proptest::prelude::*;
use std::collections::HashMap;

#[derive(Debug, Clone)]
enum Op {
    Insert(u8),
    Delete(u8),
    Get(u8),
}

fn ops() -> impl Strategy<Value = Vec<Op>> {
    prop::collection::vec(
        prop_oneof![
            3 => any::<u8>().prop_map(Op::Insert),
            1 => any::<u8>().prop_map(Op::Delete),
            2 => any::<u8>().prop_map(Op::Get),
        ],
        1..120,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn heap_matches_model(ops in ops(), page_size in prop::sample::select(vec![128usize, 512, 4096])) {
        let (schema, classes) = paper_schema();
        let mut store = SimStore::new(page_size);
        let mut heap = ObjectStore::new();
        let mut model: HashMap<u8, Oid> = HashMap::new();

        for op in ops {
            match op {
                Op::Insert(tag) => {
                    if model.contains_key(&tag) {
                        continue;
                    }
                    let oid = heap.fresh_oid(classes.division);
                    let obj = Object::new(
                        &schema,
                        oid,
                        vec![
                            ("name", Value::from(format!("d{tag}")).into()),
                            ("function", Value::from("f").into()),
                            ("movings", Value::Int(tag as i64).into()),
                        ],
                    )
                    .unwrap();
                    heap.insert(&mut store, obj).unwrap();
                    model.insert(tag, oid);
                }
                Op::Delete(tag) => {
                    match model.remove(&tag) {
                        Some(oid) => {
                            let removed = heap.delete(&mut store, oid).unwrap();
                            prop_assert_eq!(removed.oid, oid);
                        }
                        None => {
                            // Deleting a never-inserted oid errors cleanly.
                            let bogus = Oid::new(classes.division, 60_000 + tag as u32);
                            prop_assert!(heap.delete(&mut store, bogus).is_err());
                        }
                    }
                }
                Op::Get(tag) => {
                    match model.get(&tag) {
                        Some(&oid) => {
                            let before = store.stats().reads;
                            let obj = heap.get(&store, oid).unwrap();
                            let want = Value::Int(tag as i64);
                            prop_assert_eq!(obj.values_of("movings"), vec![&want]);
                            prop_assert_eq!(store.stats().reads, before + 1,
                                "a get costs exactly one page read");
                        }
                        None => {
                            let bogus = Oid::new(classes.division, 60_000 + tag as u32);
                            prop_assert!(heap.get(&store, bogus).is_err());
                        }
                    }
                }
            }
        }
        prop_assert_eq!(heap.len(), model.len());
        prop_assert_eq!(heap.count(classes.division), model.len());
        // Scan visits exactly the live objects, one page read per heap page.
        store.reset_stats();
        let seen = heap.scan(&store, classes.division).count();
        prop_assert_eq!(seen, model.len());
        prop_assert_eq!(store.stats().reads as usize, heap.pages_of(classes.division));
    }
}
