//! The durable page-store abstraction: real page payloads behind a trait.
//!
//! [`SimStore`](crate::SimStore) *accounts* page traffic for structures
//! whose payloads live in RAM — the substrate the cost-model validation
//! runs on. This module is the other half of ROADMAP item 1: pages as
//! first-class byte containers, so an index can be written out, dropped,
//! reopened, and can exceed RAM. The [`PageStore`] trait is deliberately
//! small:
//!
//! * fixed-size pages addressed by [`PageId`]; `PageId(0)` is never a data
//!   page (backends reserve it for their header, and `0` doubles as the
//!   nil link in page-resident data structures);
//! * `alloc`/`free` manage a freelist inside the store;
//! * `read_page`/`write_page` copy whole pages in and out;
//! * `meta`/`set_meta` carry a small application blob (a B-tree root
//!   pointer) that commits atomically with the data;
//! * `commit` is the durability point: everything written before it is
//!   atomically visible after a crash, everything after is rolled back.
//!
//! Two implementations exist: [`MemStore`] here (a heap of pages, for
//! tests and as the reopened-equals-twin oracle) and `oic_pager::Pager`
//! (file-backed, LRU-cached, undo-journaled). Every implementation counts
//! its traffic in an [`IoStats`], whose snapshot/delta/reset API is what
//! per-phase I/O assertions in tests are built on.
//!
//! All methods take `&mut self` — even reads, which may rotate an LRU
//! cache underneath. This keeps implementations free of interior
//! mutability, preserving the workspace invariant that anything parallel
//! stages share is `Sync` without hidden cells (DESIGN.md §5.13); a pager
//! is owned by exactly one structure and never read concurrently.

use crate::PageId;
use std::fmt;

/// Errors of the durable page layer.
#[derive(Debug)]
pub enum StoreError {
    /// An underlying file operation failed (including injected faults).
    Io(std::io::Error),
    /// On-disk state failed validation (bad magic, checksum, freelist).
    Corrupt(String),
    /// The page cache cannot make room: every frame is pinned.
    AllPinned,
    /// The page id is not a live, readable data page.
    BadPage(PageId),
    /// A request violated a size or argument contract.
    Invalid(String),
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io(e) => write!(f, "i/o error: {e}"),
            StoreError::Corrupt(m) => write!(f, "corrupt store: {m}"),
            StoreError::AllPinned => write!(f, "page cache exhausted: all frames pinned"),
            StoreError::BadPage(p) => write!(f, "not a live data page: {p}"),
            StoreError::Invalid(m) => write!(f, "invalid request: {m}"),
        }
    }
}

impl std::error::Error for StoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StoreError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for StoreError {
    fn from(e: std::io::Error) -> Self {
        StoreError::Io(e)
    }
}

/// Page-I/O counters of a [`PageStore`].
///
/// Counters are cumulative since the store was opened (or since the last
/// [`PageStore::reset_io_stats`]); [`IoStats::since`] turns two snapshots
/// into a per-phase delta, so tests can assert the traffic of exactly one
/// operation without resetting global state:
///
/// ```
/// # use oic_storage::paged::{MemStore, PageStore};
/// let mut store = MemStore::new(4096);
/// let p = store.alloc().unwrap();
/// store.write_page(p, &vec![0u8; 4096]).unwrap();
/// let before = store.io_stats();
/// let mut buf = vec![0u8; 4096];
/// store.read_page(p, &mut buf).unwrap();
/// let phase = store.io_stats().since(&before);
/// assert_eq!(phase.logical_reads, 1);
/// assert_eq!(phase.logical_writes, 0);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IoStats {
    /// Page reads requested by callers.
    pub logical_reads: u64,
    /// Page writes requested by callers.
    pub logical_writes: u64,
    /// Logical reads served from the page cache (RAM-resident stores
    /// count every read as a hit).
    pub cache_hits: u64,
    /// Pages fetched from the backing file.
    pub physical_reads: u64,
    /// Page images written to the backing file (eviction write-back and
    /// commit flushes).
    pub physical_writes: u64,
    /// Old page images appended to the undo journal before an overwrite.
    pub journal_writes: u64,
    /// Cache frames evicted (clean or dirty).
    pub evictions: u64,
}

impl IoStats {
    /// Component-wise delta (`self` must be the later snapshot).
    pub fn since(&self, earlier: &IoStats) -> IoStats {
        IoStats {
            logical_reads: self.logical_reads - earlier.logical_reads,
            logical_writes: self.logical_writes - earlier.logical_writes,
            cache_hits: self.cache_hits - earlier.cache_hits,
            physical_reads: self.physical_reads - earlier.physical_reads,
            physical_writes: self.physical_writes - earlier.physical_writes,
            journal_writes: self.journal_writes - earlier.journal_writes,
            evictions: self.evictions - earlier.evictions,
        }
    }

    /// Cache misses: logical reads that went to the backing file.
    #[inline]
    pub fn cache_misses(&self) -> u64 {
        self.logical_reads - self.cache_hits
    }

    /// Physical page transfers in both directions (journal included) —
    /// the durable analogue of the paper's page-access cost unit.
    #[inline]
    pub fn physical_total(&self) -> u64 {
        self.physical_reads + self.physical_writes + self.journal_writes
    }

    /// Fraction of logical reads served by the cache (1.0 when idle).
    pub fn hit_rate(&self) -> f64 {
        if self.logical_reads == 0 {
            1.0
        } else {
            self.cache_hits as f64 / self.logical_reads as f64
        }
    }
}

impl fmt::Display for IoStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}lr ({}hit) {}lw | phys {}r+{}w+{}j | {}ev",
            self.logical_reads,
            self.cache_hits,
            self.logical_writes,
            self.physical_reads,
            self.physical_writes,
            self.journal_writes,
            self.evictions
        )
    }
}

/// A store of fixed-size pages with allocation, user metadata, atomic
/// commit, and I/O accounting. See the module docs for the contract.
pub trait PageStore {
    /// Page size in bytes; `read_page`/`write_page` buffers must match.
    fn page_size(&self) -> usize;

    /// Allocates a page (recycling freed ids first). The fresh page reads
    /// as zeroes until written.
    fn alloc(&mut self) -> Result<PageId, StoreError>;

    /// Returns a page to the freelist. Freeing a non-live page is an
    /// error; the page's content becomes undefined.
    fn free(&mut self, id: PageId) -> Result<(), StoreError>;

    /// Copies page `id` into `buf` (`buf.len() == page_size`).
    fn read_page(&mut self, id: PageId, buf: &mut [u8]) -> Result<(), StoreError>;

    /// Replaces page `id` with `data` (`data.len() == page_size`).
    fn write_page(&mut self, id: PageId, data: &[u8]) -> Result<(), StoreError>;

    /// The user metadata blob as of the last `set_meta` (after reopen:
    /// as of the last committed `set_meta`).
    fn meta(&self) -> &[u8];

    /// Stages a new metadata blob (at most [`META_MAX`] bytes); durable
    /// at the next `commit`, atomically with the page writes.
    fn set_meta(&mut self, meta: &[u8]) -> Result<(), StoreError>;

    /// Durability point: after `commit` returns, the state (pages,
    /// freelist, metadata) survives a crash; a crash mid-commit yields
    /// either the previous committed state or this one, never a mix.
    fn commit(&mut self) -> Result<(), StoreError>;

    /// Number of live (allocated, not freed) data pages.
    fn live_pages(&self) -> u64;

    /// Cumulative I/O counters; see [`IoStats`] for the snapshot API.
    fn io_stats(&self) -> IoStats;

    /// Zeroes the I/O counters.
    fn reset_io_stats(&mut self);
}

/// Maximum length of the user metadata blob (it must fit in every
/// backend's header page alongside the fixed fields).
pub const META_MAX: usize = 256;

/// The in-memory [`PageStore`]: a heap of pages with a freelist.
///
/// Nothing is durable — `commit` is a no-op — but the allocation, nil-id
/// and metadata contracts are identical to the file-backed pager, so a
/// structure exercised against `MemStore` and against `oic_pager::Pager`
/// must behave identically. Every read counts as a cache hit (the whole
/// store *is* the cache); physical counters stay zero.
#[derive(Debug, Default)]
pub struct MemStore {
    page_size: usize,
    /// `pages[0]` is the reserved nil slot and never allocated.
    pages: Vec<Option<Vec<u8>>>,
    free: Vec<u64>,
    live: u64,
    meta: Vec<u8>,
    stats: IoStats,
}

impl MemStore {
    /// Creates an empty store with the given page size.
    pub fn new(page_size: usize) -> Self {
        assert!(page_size >= 64, "page size unrealistically small");
        MemStore {
            page_size,
            pages: vec![None],
            free: Vec::new(),
            live: 0,
            meta: Vec::new(),
            stats: IoStats::default(),
        }
    }

    fn slot(&self, id: PageId) -> Result<usize, StoreError> {
        let i = id.0 as usize;
        if i == 0 || i >= self.pages.len() || self.pages[i].is_none() {
            return Err(StoreError::BadPage(id));
        }
        Ok(i)
    }
}

impl PageStore for MemStore {
    fn page_size(&self) -> usize {
        self.page_size
    }

    fn alloc(&mut self) -> Result<PageId, StoreError> {
        self.live += 1;
        let id = match self.free.pop() {
            Some(i) => i,
            None => {
                self.pages.push(None);
                (self.pages.len() - 1) as u64
            }
        };
        self.pages[id as usize] = Some(vec![0; self.page_size]);
        Ok(PageId(id))
    }

    fn free(&mut self, id: PageId) -> Result<(), StoreError> {
        let i = self.slot(id)?;
        self.pages[i] = None;
        self.free.push(id.0);
        self.live -= 1;
        Ok(())
    }

    fn read_page(&mut self, id: PageId, buf: &mut [u8]) -> Result<(), StoreError> {
        if buf.len() != self.page_size {
            return Err(StoreError::Invalid(format!(
                "read buffer {} != page size {}",
                buf.len(),
                self.page_size
            )));
        }
        let i = self.slot(id)?;
        self.stats.logical_reads += 1;
        self.stats.cache_hits += 1;
        buf.copy_from_slice(self.pages[i].as_ref().expect("live slot"));
        Ok(())
    }

    fn write_page(&mut self, id: PageId, data: &[u8]) -> Result<(), StoreError> {
        if data.len() != self.page_size {
            return Err(StoreError::Invalid(format!(
                "write buffer {} != page size {}",
                data.len(),
                self.page_size
            )));
        }
        let i = self.slot(id)?;
        self.stats.logical_writes += 1;
        self.pages[i]
            .as_mut()
            .expect("live slot")
            .copy_from_slice(data);
        Ok(())
    }

    fn meta(&self) -> &[u8] {
        &self.meta
    }

    fn set_meta(&mut self, meta: &[u8]) -> Result<(), StoreError> {
        if meta.len() > META_MAX {
            return Err(StoreError::Invalid(format!(
                "meta blob {} exceeds {META_MAX} bytes",
                meta.len()
            )));
        }
        self.meta = meta.to_vec();
        Ok(())
    }

    fn commit(&mut self) -> Result<(), StoreError> {
        Ok(())
    }

    fn live_pages(&self) -> u64 {
        self.live
    }

    fn io_stats(&self) -> IoStats {
        self.stats
    }

    fn reset_io_stats(&mut self) {
        self.stats = IoStats::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_free_recycle_and_nil() {
        let mut s = MemStore::new(64);
        let a = s.alloc().unwrap();
        let b = s.alloc().unwrap();
        assert_ne!(a.0, 0, "PageId(0) is reserved");
        assert_ne!(a, b);
        assert_eq!(s.live_pages(), 2);
        s.free(a).unwrap();
        assert_eq!(s.live_pages(), 1);
        let c = s.alloc().unwrap();
        assert_eq!(c, a, "freed id recycled");
        assert!(matches!(s.free(PageId(999)), Err(StoreError::BadPage(_))));
    }

    #[test]
    fn fresh_pages_read_zero_and_roundtrip() {
        let mut s = MemStore::new(64);
        let p = s.alloc().unwrap();
        let mut buf = vec![1u8; 64];
        s.read_page(p, &mut buf).unwrap();
        assert!(buf.iter().all(|&b| b == 0));
        let data: Vec<u8> = (0..64u8).collect();
        s.write_page(p, &data).unwrap();
        s.read_page(p, &mut buf).unwrap();
        assert_eq!(buf, data);
        // Recycled pages are zeroed again.
        s.free(p).unwrap();
        let q = s.alloc().unwrap();
        assert_eq!(q, p);
        s.read_page(q, &mut buf).unwrap();
        assert!(buf.iter().all(|&b| b == 0));
    }

    #[test]
    fn stats_snapshot_delta_and_reset() {
        let mut s = MemStore::new(64);
        let p = s.alloc().unwrap();
        let mut buf = vec![0u8; 64];
        s.write_page(p, &buf.clone()).unwrap();
        let snap = s.io_stats();
        s.read_page(p, &mut buf).unwrap();
        s.read_page(p, &mut buf).unwrap();
        let d = s.io_stats().since(&snap);
        assert_eq!(d.logical_reads, 2);
        assert_eq!(d.cache_hits, 2);
        assert_eq!(d.logical_writes, 0);
        assert_eq!(d.cache_misses(), 0);
        assert_eq!(d.hit_rate(), 1.0);
        s.reset_io_stats();
        assert_eq!(s.io_stats(), IoStats::default());
    }

    #[test]
    fn meta_roundtrip_and_cap() {
        let mut s = MemStore::new(64);
        assert!(s.meta().is_empty());
        s.set_meta(b"root=7").unwrap();
        assert_eq!(s.meta(), b"root=7");
        let huge = vec![0u8; META_MAX + 1];
        assert!(matches!(s.set_meta(&huge), Err(StoreError::Invalid(_))));
    }

    #[test]
    fn buffer_size_mismatch_rejected() {
        let mut s = MemStore::new(64);
        let p = s.alloc().unwrap();
        let mut small = vec![0u8; 32];
        assert!(matches!(
            s.read_page(p, &mut small),
            Err(StoreError::Invalid(_))
        ));
        assert!(matches!(
            s.write_page(p, &small),
            Err(StoreError::Invalid(_))
        ));
    }

    #[test]
    fn error_display_and_source() {
        use std::error::Error as _;
        let e = StoreError::from(std::io::Error::other("boom"));
        assert!(e.to_string().contains("boom"));
        assert!(e.source().is_some());
        assert!(StoreError::AllPinned.to_string().contains("pinned"));
    }
}
