//! The object heap: one class per page (the paper's storage assumption).

use crate::{Object, Oid, PageId, SimStore};
use oic_schema::ClassId;
use std::collections::HashMap;
use std::fmt;

/// Errors from heap operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HeapError {
    /// The oid is not stored.
    NotFound(Oid),
    /// An object with this oid is already stored.
    Duplicate(Oid),
}

impl fmt::Display for HeapError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HeapError::NotFound(o) => write!(f, "object {o} not found"),
            HeapError::Duplicate(o) => write!(f, "object {o} already stored"),
        }
    }
}

impl std::error::Error for HeapError {}

#[derive(Debug, Default)]
struct ClassHeap {
    /// Pages owned by this class, in allocation order.
    pages: Vec<PageId>,
    /// Free bytes remaining in the last page.
    tail_free: usize,
    /// Objects of the class in insertion order (stable scan order).
    objects: Vec<Oid>,
}

/// Heap storage for objects, honouring *“a page contains objects of only one
/// class”* (Section 1). Object placement is append-only with per-class fill;
/// deletion frees the slot logically (pages are not compacted, as is usual
/// for heap files).
#[derive(Debug)]
pub struct ObjectStore {
    by_oid: HashMap<Oid, (Object, PageId)>,
    classes: HashMap<ClassId, ClassHeap>,
    next_seq: HashMap<ClassId, u32>,
}

impl ObjectStore {
    /// Creates an empty heap.
    pub fn new() -> Self {
        ObjectStore {
            by_oid: HashMap::new(),
            classes: HashMap::new(),
            next_seq: HashMap::new(),
        }
    }

    /// Generates a fresh oid for `class` (the database system generates
    /// oids; Section 1 of the paper).
    pub fn fresh_oid(&mut self, class: ClassId) -> Oid {
        let seq = self.next_seq.entry(class).or_insert(0);
        let oid = Oid::new(class, *seq);
        *seq += 1;
        oid
    }

    /// Stores an object, placing it in a page of its class and counting the
    /// page write.
    pub fn insert(&mut self, store: &mut SimStore, obj: Object) -> Result<(), HeapError> {
        if self.by_oid.contains_key(&obj.oid) {
            return Err(HeapError::Duplicate(obj.oid));
        }
        let size = obj.stored_size().min(store.page_size());
        let class = obj.class();
        let heap = self.classes.entry(class).or_default();
        let page = if heap.pages.is_empty() || heap.tail_free < size {
            let p = store.alloc();
            heap.pages.push(p);
            heap.tail_free = store.page_size() - size;
            p
        } else {
            heap.tail_free -= size;
            *heap.pages.last().expect("non-empty after check")
        };
        store.touch_write(page);
        heap.objects.push(obj.oid);
        self.by_oid.insert(obj.oid, (obj, page));
        Ok(())
    }

    /// Fetches an object, counting the page read.
    pub fn get(&self, store: &SimStore, oid: Oid) -> Result<&Object, HeapError> {
        let (obj, page) = self.by_oid.get(&oid).ok_or(HeapError::NotFound(oid))?;
        store.touch_read(*page);
        Ok(obj)
    }

    /// Looks up an object without counting any page access (for test
    /// assertions and generators that already hold the object's page).
    pub fn peek(&self, oid: Oid) -> Option<&Object> {
        self.by_oid.get(&oid).map(|(o, _)| o)
    }

    /// Removes an object, counting the read and rewrite of its page.
    pub fn delete(&mut self, store: &mut SimStore, oid: Oid) -> Result<Object, HeapError> {
        let (obj, page) = self.by_oid.remove(&oid).ok_or(HeapError::NotFound(oid))?;
        store.touch_read(page);
        store.touch_write(page);
        if let Some(heap) = self.classes.get_mut(&oid.class) {
            heap.objects.retain(|&o| o != oid);
        }
        Ok(obj)
    }

    /// Sequentially scans all objects of `class` (no subclasses), counting
    /// one read per page of the class heap. This is the access pattern of
    /// the naive (index-less) evaluator.
    pub fn scan<'a>(
        &'a self,
        store: &SimStore,
        class: ClassId,
    ) -> impl Iterator<Item = &'a Object> + 'a {
        if let Some(heap) = self.classes.get(&class) {
            for &p in &heap.pages {
                store.touch_read(p);
            }
        }
        self.classes
            .get(&class)
            .into_iter()
            .flat_map(move |heap| heap.objects.iter())
            .filter_map(move |oid| self.by_oid.get(oid).map(|(o, _)| o))
    }

    /// Number of stored objects of `class` (no subclasses).
    pub fn count(&self, class: ClassId) -> usize {
        self.classes.get(&class).map_or(0, |h| h.objects.len())
    }

    /// Number of heap pages owned by `class`.
    pub fn pages_of(&self, class: ClassId) -> usize {
        self.classes.get(&class).map_or(0, |h| h.pages.len())
    }

    /// Oids of all objects of `class` in insertion order.
    pub fn oids_of(&self, class: ClassId) -> Vec<Oid> {
        self.classes
            .get(&class)
            .map(|h| h.objects.clone())
            .unwrap_or_default()
    }

    /// Total number of stored objects.
    pub fn len(&self) -> usize {
        self.by_oid.len()
    }

    /// Whether the heap is empty.
    pub fn is_empty(&self) -> bool {
        self.by_oid.is_empty()
    }
}

impl Default for ObjectStore {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Value;
    use oic_schema::fixtures;

    fn division(s: &oic_schema::Schema, heap: &mut ObjectStore, name: &str) -> Object {
        let (_, c) = fixtures::paper_schema();
        let oid = heap.fresh_oid(c.division);
        Object::new(
            s,
            oid,
            vec![
                ("name", Value::from(name).into()),
                ("function", Value::from("ops").into()),
                ("movings", Value::Int(0).into()),
            ],
        )
        .unwrap()
    }

    #[test]
    fn insert_get_delete_roundtrip() {
        let (s, c) = fixtures::paper_schema();
        let mut store = SimStore::new(4096);
        let mut heap = ObjectStore::new();
        let obj = division(&s, &mut heap, "sales");
        let oid = obj.oid;
        heap.insert(&mut store, obj).unwrap();
        assert_eq!(heap.count(c.division), 1);
        let got = heap.get(&store, oid).unwrap();
        assert_eq!(got.values_of("name"), vec![&Value::from("sales")]);
        let removed = heap.delete(&mut store, oid).unwrap();
        assert_eq!(removed.oid, oid);
        assert!(heap.get(&store, oid).is_err());
        assert!(heap.is_empty());
    }

    #[test]
    fn duplicate_insert_rejected() {
        let (s, _) = fixtures::paper_schema();
        let mut store = SimStore::new(4096);
        let mut heap = ObjectStore::new();
        let obj = division(&s, &mut heap, "a");
        let dup = obj.clone();
        heap.insert(&mut store, obj).unwrap();
        assert!(matches!(
            heap.insert(&mut store, dup),
            Err(HeapError::Duplicate(_))
        ));
    }

    #[test]
    fn pages_fill_before_allocating() {
        let (s, c) = fixtures::paper_schema();
        let mut store = SimStore::new(4096);
        let mut heap = ObjectStore::new();
        for i in 0..100 {
            let obj = division(&s, &mut heap, &format!("d{i}"));
            heap.insert(&mut store, obj).unwrap();
        }
        // ~40 byte objects: far fewer pages than objects.
        assert!(heap.pages_of(c.division) < 10, "objects share pages");
        assert_eq!(heap.count(c.division), 100);
    }

    #[test]
    fn scan_counts_one_read_per_page() {
        let (s, c) = fixtures::paper_schema();
        let mut store = SimStore::new(4096);
        let mut heap = ObjectStore::new();
        for i in 0..50 {
            let obj = division(&s, &mut heap, &format!("d{i}"));
            heap.insert(&mut store, obj).unwrap();
        }
        store.reset_stats();
        let n = heap.scan(&store, c.division).count();
        assert_eq!(n, 50);
        assert_eq!(store.stats().reads as usize, heap.pages_of(c.division));
    }

    #[test]
    fn classes_never_share_pages() {
        let (s, c) = fixtures::paper_schema();
        let mut store = SimStore::new(4096);
        let mut heap = ObjectStore::new();
        // Interleave insertions of two classes; pages must stay disjoint.
        for i in 0..20 {
            let obj = division(&s, &mut heap, &format!("d{i}"));
            heap.insert(&mut store, obj).unwrap();
            let oid = heap.fresh_oid(c.company);
            let comp = Object::new(
                &s,
                oid,
                vec![
                    ("name", Value::from(format!("co{i}")).into()),
                    ("location", Value::from("x").into()),
                    ("divs", crate::FieldValue::Multi(vec![])),
                ],
            )
            .unwrap();
            heap.insert(&mut store, comp).unwrap();
        }
        assert!(heap.pages_of(c.division) >= 1);
        assert!(heap.pages_of(c.company) >= 1);
        // Distinct by construction: each insert with a class switch starts
        // from that class's own tail page. Verify via the scan page counts.
        // (placement bookkeeping is internal; verified via page counts below)
        // (placement bookkeeping is internal; the public invariant is that
        // per-class page counts sum to the total live pages)
        assert_eq!(
            heap.pages_of(c.division) + heap.pages_of(c.company),
            store.live_pages() as usize
        );
    }

    #[test]
    fn fresh_oids_are_sequential_per_class() {
        let (_, c) = fixtures::paper_schema();
        let mut heap = ObjectStore::new();
        let a = heap.fresh_oid(c.division);
        let b = heap.fresh_oid(c.division);
        let x = heap.fresh_oid(c.company);
        assert_eq!(a.seq + 1, b.seq);
        assert_eq!(x.seq, 0);
        assert_ne!(a.class, x.class);
    }
}
