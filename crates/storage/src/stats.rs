//! Page-access statistics.

use std::fmt;

/// Cumulative page-access counters of a [`crate::SimStore`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AccessStats {
    /// Total page reads since the last reset.
    pub reads: u64,
    /// Total page writes since the last reset.
    pub writes: u64,
}

impl AccessStats {
    /// Reads plus writes — the paper's single cost unit.
    #[inline]
    pub fn total(&self) -> u64 {
        self.reads + self.writes
    }

    /// Component-wise difference (`self` must be a later snapshot).
    pub fn since(&self, earlier: &AccessStats) -> AccessStats {
        AccessStats {
            reads: self.reads - earlier.reads,
            writes: self.writes - earlier.writes,
        }
    }
}

impl fmt::Display for AccessStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}r+{}w={}", self.reads, self.writes, self.total())
    }
}

/// Per-operation statistics collected between
/// [`crate::SimStore::begin_op`] and [`crate::SimStore::end_op`].
///
/// `distinct_*` counts each page at most once within the operation — the
/// quantity estimated by Yao's formula and by the paper's convention that a
/// maintenance pass fetches each page only once (Section 3.1, `CMT`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OpStats {
    /// Page reads, counting repeats.
    pub reads: u64,
    /// Page writes, counting repeats.
    pub writes: u64,
    /// Distinct pages read.
    pub distinct_reads: u64,
    /// Distinct pages written.
    pub distinct_writes: u64,
}

impl OpStats {
    /// Distinct reads plus distinct writes — comparable to the analytic
    /// model's page-access estimates.
    #[inline]
    pub fn distinct_total(&self) -> u64 {
        self.distinct_reads + self.distinct_writes
    }

    /// Total accesses counting repeats.
    #[inline]
    pub fn total(&self) -> u64 {
        self.reads + self.writes
    }
}

impl fmt::Display for OpStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}r+{}w ({}dr+{}dw distinct)",
            self.reads, self.writes, self.distinct_reads, self.distinct_writes
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn since_subtracts() {
        let a = AccessStats {
            reads: 10,
            writes: 4,
        };
        let b = AccessStats {
            reads: 25,
            writes: 9,
        };
        let d = b.since(&a);
        assert_eq!(
            d,
            AccessStats {
                reads: 15,
                writes: 5
            }
        );
        assert_eq!(d.total(), 20);
    }

    #[test]
    fn op_stats_totals() {
        let s = OpStats {
            reads: 7,
            writes: 3,
            distinct_reads: 5,
            distinct_writes: 2,
        };
        assert_eq!(s.total(), 10);
        assert_eq!(s.distinct_total(), 7);
        assert!(s.to_string().contains("distinct"));
    }
}
