//! The page store: allocation plus access accounting.

use crate::{AccessStats, OpStats};
use std::cell::RefCell;
use std::collections::HashSet;

/// Identifier of a page in a [`SimStore`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PageId(pub u64);

impl std::fmt::Display for PageId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "p{}", self.0)
    }
}

#[derive(Debug, Default)]
struct Counters {
    stats: AccessStats,
    op: Option<OpScope>,
}

#[derive(Debug, Default)]
struct OpScope {
    stats: OpStats,
    read_set: HashSet<PageId>,
    write_set: HashSet<PageId>,
}

/// A simulated disk: a page allocator whose every read and write is counted.
///
/// Pages carry no payload bytes here — the structures built on top (B+-tree
/// nodes, heap pages) own their data and *account* their accesses against
/// the store. This keeps the substrate honest about the paper's one and only
/// cost unit (page accesses) without paying serialization costs on the hot
/// path; capacity decisions are still made against the real `page_size` by
/// the owners.
#[derive(Debug)]
pub struct SimStore {
    page_size: usize,
    next: u64,
    free: Vec<PageId>,
    live: u64,
    counters: RefCell<Counters>,
}

impl SimStore {
    /// Creates a store with the given page size in bytes.
    pub fn new(page_size: usize) -> Self {
        assert!(page_size >= 64, "page size unrealistically small");
        SimStore {
            page_size,
            next: 0,
            free: Vec::new(),
            live: 0,
            counters: RefCell::new(Counters::default()),
        }
    }

    /// Page size in bytes.
    #[inline]
    pub fn page_size(&self) -> usize {
        self.page_size
    }

    /// Number of currently allocated pages.
    #[inline]
    pub fn live_pages(&self) -> u64 {
        self.live
    }

    /// Allocates a page (recycling freed ids).
    pub fn alloc(&mut self) -> PageId {
        self.live += 1;
        if let Some(p) = self.free.pop() {
            return p;
        }
        let id = PageId(self.next);
        self.next += 1;
        id
    }

    /// Frees a page.
    pub fn free(&mut self, id: PageId) {
        debug_assert!(self.live > 0);
        self.live -= 1;
        self.free.push(id);
    }

    /// Records a read of `id`.
    pub fn touch_read(&self, id: PageId) {
        let mut c = self.counters.borrow_mut();
        c.stats.reads += 1;
        if let Some(op) = c.op.as_mut() {
            op.stats.reads += 1;
            if op.read_set.insert(id) {
                op.stats.distinct_reads += 1;
            }
        }
    }

    /// Records a write of `id`.
    pub fn touch_write(&self, id: PageId) {
        let mut c = self.counters.borrow_mut();
        c.stats.writes += 1;
        if let Some(op) = c.op.as_mut() {
            op.stats.writes += 1;
            if op.write_set.insert(id) {
                op.stats.distinct_writes += 1;
            }
        }
    }

    /// Cumulative counters.
    pub fn stats(&self) -> AccessStats {
        self.counters.borrow().stats
    }

    /// Resets cumulative counters (does not affect a running op scope).
    pub fn reset_stats(&self) {
        self.counters.borrow_mut().stats = AccessStats::default();
    }

    /// Returns the cumulative counters and resets them in one step — the
    /// per-phase snapshot primitive (`let phase = store.take_stats();`
    /// brackets exactly the accesses since the previous take/reset).
    pub fn take_stats(&self) -> AccessStats {
        let mut c = self.counters.borrow_mut();
        std::mem::take(&mut c.stats)
    }

    /// Opens an operation scope; accesses are additionally tracked with
    /// distinct-page resolution until [`SimStore::end_op`]. Scopes do not
    /// nest — beginning a new scope discards the previous one.
    pub fn begin_op(&self) {
        self.counters.borrow_mut().op = Some(OpScope::default());
    }

    /// Closes the operation scope and returns its statistics.
    ///
    /// Returns default (zero) stats if no scope was open.
    pub fn end_op(&self) -> OpStats {
        let mut c = self.counters.borrow_mut();
        c.op.take().map(|o| o.stats).unwrap_or_default()
    }

    /// Runs `f` inside an operation scope and returns `(result, stats)`.
    pub fn measure<R>(&self, f: impl FnOnce() -> R) -> (R, OpStats) {
        self.begin_op();
        let r = f();
        (r, self.end_op())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_free_recycles() {
        let mut s = SimStore::new(4096);
        let a = s.alloc();
        let b = s.alloc();
        assert_ne!(a, b);
        assert_eq!(s.live_pages(), 2);
        s.free(a);
        assert_eq!(s.live_pages(), 1);
        let c = s.alloc();
        assert_eq!(c, a, "freed id is recycled");
    }

    #[test]
    fn counting_and_reset() {
        let mut s = SimStore::new(4096);
        let a = s.alloc();
        s.touch_read(a);
        s.touch_read(a);
        s.touch_write(a);
        assert_eq!(
            s.stats(),
            AccessStats {
                reads: 2,
                writes: 1
            }
        );
        s.reset_stats();
        assert_eq!(s.stats().total(), 0);
    }

    #[test]
    fn take_stats_snapshots_and_resets() {
        let mut s = SimStore::new(4096);
        let a = s.alloc();
        s.touch_read(a);
        s.touch_write(a);
        let phase1 = s.take_stats();
        assert_eq!(
            phase1,
            AccessStats {
                reads: 1,
                writes: 1
            }
        );
        s.touch_read(a);
        let phase2 = s.take_stats();
        assert_eq!(
            phase2,
            AccessStats {
                reads: 1,
                writes: 0
            },
            "second phase starts from zero"
        );
        assert_eq!(s.stats().total(), 0);
    }

    #[test]
    fn op_scope_tracks_distinct_pages() {
        let mut s = SimStore::new(4096);
        let a = s.alloc();
        let b = s.alloc();
        s.begin_op();
        s.touch_read(a);
        s.touch_read(a);
        s.touch_read(b);
        s.touch_write(b);
        let op = s.end_op();
        assert_eq!(op.reads, 3);
        assert_eq!(op.distinct_reads, 2);
        assert_eq!(op.writes, 1);
        assert_eq!(op.distinct_writes, 1);
        // Scope closed: further accesses only hit cumulative counters.
        s.touch_read(a);
        assert_eq!(s.end_op(), OpStats::default());
    }

    #[test]
    fn measure_wraps_closure() {
        let mut s = SimStore::new(4096);
        let a = s.alloc();
        let (val, op) = s.measure(|| {
            s.touch_read(a);
            42
        });
        assert_eq!(val, 42);
        assert_eq!(op.distinct_reads, 1);
    }

    #[test]
    #[should_panic]
    fn tiny_pages_rejected() {
        let _ = SimStore::new(16);
    }
}
