//! Attribute values and order-preserving key encoding.

use crate::Oid;
use std::fmt;

/// An atomic value or object reference, as stored in an attribute.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// Integer atomic object.
    Int(i64),
    /// Float atomic object.
    Float(f64),
    /// String atomic object.
    Str(String),
    /// Forward reference to another object.
    Ref(Oid),
}

impl Eq for Value {}

impl std::hash::Hash for Value {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        match self {
            Value::Int(v) => {
                0u8.hash(state);
                v.hash(state);
            }
            Value::Float(v) => {
                1u8.hash(state);
                v.to_bits().hash(state);
            }
            Value::Str(v) => {
                2u8.hash(state);
                v.hash(state);
            }
            Value::Ref(v) => {
                3u8.hash(state);
                v.hash(state);
            }
        }
    }
}

impl Value {
    /// Reference payload, if any.
    #[inline]
    pub fn as_ref_oid(&self) -> Option<Oid> {
        match self {
            Value::Ref(o) => Some(*o),
            _ => None,
        }
    }

    /// Estimated stored size in bytes (used by the heap to place objects and
    /// by the cost model's record-length defaults).
    pub fn stored_size(&self) -> usize {
        match self {
            Value::Int(_) | Value::Float(_) => 8,
            Value::Str(s) => s.len().max(1),
            Value::Ref(_) => 8,
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Int(v) => write!(f, "{v}"),
            Value::Float(v) => write!(f, "{v}"),
            Value::Str(v) => write!(f, "{v:?}"),
            Value::Ref(o) => write!(f, "{o}"),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}
impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.to_string())
    }
}
impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(v)
    }
}
impl From<Oid> for Value {
    fn from(v: Oid) -> Self {
        Value::Ref(v)
    }
}

/// The value(s) held by one attribute of one object: single-valued
/// attributes hold exactly one value (the paper assumes no NULLs),
/// multi-valued attributes hold a set.
#[derive(Debug, Clone, PartialEq)]
pub enum FieldValue {
    /// Single-valued attribute.
    Single(Value),
    /// Multi-valued attribute (`+` in Figure 1); `values.len()` realizes the
    /// cost-model parameter `nin`.
    Multi(Vec<Value>),
}

impl FieldValue {
    /// Iterates the held values (one for `Single`).
    pub fn values(&self) -> impl Iterator<Item = &Value> {
        match self {
            FieldValue::Single(v) => std::slice::from_ref(v).iter(),
            FieldValue::Multi(vs) => vs.iter(),
        }
    }

    /// Number of held values (`nin` realized for this object).
    pub fn count(&self) -> usize {
        match self {
            FieldValue::Single(_) => 1,
            FieldValue::Multi(vs) => vs.len(),
        }
    }

    /// Estimated stored size in bytes.
    pub fn stored_size(&self) -> usize {
        self.values().map(Value::stored_size).sum()
    }
}

impl From<Value> for FieldValue {
    fn from(v: Value) -> Self {
        FieldValue::Single(v)
    }
}

/// Encodes a value into order-preserving bytes for use as a B+-tree key.
///
/// * `Int` — offset-binary big-endian (sign bit flipped);
/// * `Float` — IEEE-754 total-order trick (flip sign bit for positives,
///   flip all bits for negatives);
/// * `Str` — raw UTF-8 bytes;
/// * `Ref` — packed big-endian oid.
///
/// A one-byte type tag keeps heterogeneous keys from aliasing.
pub fn encode_key(v: &Value) -> Vec<u8> {
    match v {
        Value::Int(i) => {
            let mut out = Vec::with_capacity(9);
            out.push(0x01);
            out.extend_from_slice(&((*i as u64) ^ (1u64 << 63)).to_be_bytes());
            out
        }
        Value::Float(x) => {
            let bits = x.to_bits();
            let ordered = if bits >> 63 == 0 {
                bits ^ (1u64 << 63)
            } else {
                !bits
            };
            let mut out = Vec::with_capacity(9);
            out.push(0x02);
            out.extend_from_slice(&ordered.to_be_bytes());
            out
        }
        Value::Str(s) => {
            let mut out = Vec::with_capacity(1 + s.len());
            out.push(0x03);
            out.extend_from_slice(s.as_bytes());
            out
        }
        Value::Ref(o) => {
            let mut out = Vec::with_capacity(9);
            out.push(0x04);
            out.extend_from_slice(&o.to_bytes());
            out
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oic_schema::ClassId;

    #[test]
    fn int_keys_preserve_order() {
        let vals = [-1000i64, -1, 0, 1, 5, 1 << 40];
        for w in vals.windows(2) {
            assert!(
                encode_key(&Value::Int(w[0])) < encode_key(&Value::Int(w[1])),
                "order violated for {} < {}",
                w[0],
                w[1]
            );
        }
    }

    #[test]
    fn float_keys_preserve_order() {
        let vals = [-1.5f64, -0.25, 0.0, 0.25, 3.5, 1e10];
        for w in vals.windows(2) {
            assert!(encode_key(&Value::Float(w[0])) < encode_key(&Value::Float(w[1])));
        }
    }

    #[test]
    fn str_keys_preserve_order() {
        assert!(encode_key(&Value::from("Daf")) < encode_key(&Value::from("Fiat")));
        assert!(encode_key(&Value::from("Fiat")) < encode_key(&Value::from("Renault")));
    }

    #[test]
    fn ref_keys_preserve_order() {
        let a = Value::Ref(Oid::new(ClassId(1), 3));
        let b = Value::Ref(Oid::new(ClassId(1), 4));
        assert!(encode_key(&a) < encode_key(&b));
    }

    #[test]
    fn type_tags_separate_domains() {
        assert_ne!(encode_key(&Value::Int(0x33)), encode_key(&Value::from("3")));
    }

    #[test]
    fn field_value_iteration_and_sizes() {
        let f = FieldValue::Multi(vec![Value::Int(1), Value::Int(2), Value::Int(3)]);
        assert_eq!(f.count(), 3);
        assert_eq!(f.stored_size(), 24);
        let s: Vec<_> = f.values().collect();
        assert_eq!(s.len(), 3);
        let single: FieldValue = Value::from("ab").into();
        assert_eq!(single.count(), 1);
        assert_eq!(single.stored_size(), 2);
    }

    #[test]
    fn value_hash_distinguishes_variants() {
        use std::collections::HashSet;
        let mut set = HashSet::new();
        set.insert(Value::Int(1));
        set.insert(Value::Float(1.0));
        set.insert(Value::from("1"));
        assert_eq!(set.len(), 3);
    }
}
