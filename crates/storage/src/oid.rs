//! Object identifiers.

use oic_schema::ClassId;
use std::fmt;

/// A system-generated object identifier, unique database-wide.
///
/// The paper writes oids as `Vehicle[i]`; we carry the owning class in the
/// oid, which both matches that notation and lets index structures group
/// posting lists per class (needed by IIX/MIX/NIX records).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Oid {
    /// Class of the identified object.
    pub class: ClassId,
    /// Per-class sequence number.
    pub seq: u32,
}

impl Oid {
    /// Creates an oid.
    #[inline]
    pub fn new(class: ClassId, seq: u32) -> Self {
        Oid { class, seq }
    }

    /// Packs the oid into a `u64` (class in the high 32 bits). The packed
    /// form preserves `(class, seq)` ordering.
    #[inline]
    pub fn pack(self) -> u64 {
        ((self.class.0 as u64) << 32) | self.seq as u64
    }

    /// Reverses [`Oid::pack`].
    #[inline]
    pub fn unpack(v: u64) -> Self {
        Oid {
            class: ClassId((v >> 32) as u32),
            seq: v as u32,
        }
    }

    /// Big-endian byte encoding, order-preserving; used as B+-tree key
    /// material when oids are key values (intermediate path positions).
    #[inline]
    pub fn to_bytes(self) -> [u8; 8] {
        self.pack().to_be_bytes()
    }

    /// Reverses [`Oid::to_bytes`].
    #[inline]
    pub fn from_bytes(b: [u8; 8]) -> Self {
        Self::unpack(u64::from_be_bytes(b))
    }
}

impl fmt::Display for Oid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}[{}]", self.class, self.seq)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pack_roundtrip() {
        let o = Oid::new(ClassId(42), 7);
        assert_eq!(Oid::unpack(o.pack()), o);
        assert_eq!(Oid::from_bytes(o.to_bytes()), o);
    }

    #[test]
    fn packed_order_matches_struct_order() {
        let a = Oid::new(ClassId(1), u32::MAX);
        let b = Oid::new(ClassId(2), 0);
        assert!(a < b);
        assert!(a.pack() < b.pack());
        assert!(a.to_bytes() < b.to_bytes());
    }

    #[test]
    fn display_matches_paper_notation() {
        assert_eq!(Oid::new(ClassId(3), 9).to_string(), "c3[9]");
    }
}
