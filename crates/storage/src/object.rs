//! In-memory object representation.

use crate::{FieldValue, Oid, Value};
use oic_schema::{Cardinality, ClassId, Schema, SchemaError};
use std::collections::BTreeMap;

/// A stored object: its oid plus the values of its attributes (declared and
/// inherited), keyed by attribute name.
#[derive(Debug, Clone, PartialEq)]
pub struct Object {
    /// Identifier; `oid.class` is the object's class.
    pub oid: Oid,
    fields: BTreeMap<String, FieldValue>,
}

impl Object {
    /// Creates an object after checking the fields against the schema: every
    /// attribute of the class must be present (the paper assumes no NULLs),
    /// cardinalities must match, and no unknown fields are allowed.
    pub fn new(
        schema: &Schema,
        oid: Oid,
        fields: Vec<(&str, FieldValue)>,
    ) -> Result<Self, SchemaError> {
        let mut map = BTreeMap::new();
        for (name, v) in fields {
            map.insert(name.to_string(), v);
        }
        let attrs = schema.all_attributes(oid.class);
        for (_, a) in &attrs {
            match map.get(&a.name) {
                None => {
                    return Err(SchemaError::UnknownAttribute {
                        class: schema.class_name(oid.class).to_string(),
                        attribute: format!("{} (missing value)", a.name),
                    })
                }
                Some(FieldValue::Multi(_)) if a.cardinality == Cardinality::Single => {
                    return Err(SchemaError::UnknownAttribute {
                        class: schema.class_name(oid.class).to_string(),
                        attribute: format!("{} (multi value for single-valued attribute)", a.name),
                    })
                }
                _ => {}
            }
        }
        if map.len() != attrs.len() {
            let known: Vec<&str> = attrs.iter().map(|(_, a)| a.name.as_str()).collect();
            let extra = map
                .keys()
                .find(|k| !known.contains(&k.as_str()))
                .cloned()
                .unwrap_or_default();
            return Err(SchemaError::UnknownAttribute {
                class: schema.class_name(oid.class).to_string(),
                attribute: extra,
            });
        }
        Ok(Object { oid, fields: map })
    }

    /// The object's class.
    #[inline]
    pub fn class(&self) -> ClassId {
        self.oid.class
    }

    /// Value(s) of the named attribute.
    pub fn field(&self, name: &str) -> Option<&FieldValue> {
        self.fields.get(name)
    }

    /// Replaces the value of an existing field; returns the old value.
    pub fn set_field(&mut self, name: &str, v: FieldValue) -> Option<FieldValue> {
        debug_assert!(self.fields.contains_key(name), "unknown field {name}");
        self.fields.insert(name.to_string(), v)
    }

    /// Convenience: the values of attribute `name` as a vector (empty if the
    /// attribute is unknown).
    pub fn values_of(&self, name: &str) -> Vec<&Value> {
        self.field(name)
            .map(|f| f.values().collect())
            .unwrap_or_default()
    }

    /// Oids referenced by attribute `name` (skipping non-reference values).
    pub fn refs_of(&self, name: &str) -> Vec<Oid> {
        self.values_of(name)
            .into_iter()
            .filter_map(Value::as_ref_oid)
            .collect()
    }

    /// Estimated stored size in bytes: oid plus field payloads plus a small
    /// per-field header.
    pub fn stored_size(&self) -> usize {
        8 + self
            .fields
            .values()
            .map(|f| 2 + f.stored_size())
            .sum::<usize>()
    }

    /// Iterates `(attribute name, field value)` pairs in name order.
    pub fn fields(&self) -> impl Iterator<Item = (&str, &FieldValue)> {
        self.fields.iter().map(|(k, v)| (k.as_str(), v))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oic_schema::fixtures;

    fn div_object(schema: &Schema, class: ClassId, seq: u32, name: &str) -> Object {
        Object::new(
            schema,
            Oid::new(class, seq),
            vec![
                ("name", Value::from(name).into()),
                ("function", Value::from("ops").into()),
                ("movings", Value::Int(3).into()),
            ],
        )
        .unwrap()
    }

    #[test]
    fn construct_and_access() {
        let (s, c) = fixtures::paper_schema();
        let o = div_object(&s, c.division, 1, "sales");
        assert_eq!(o.class(), c.division);
        assert_eq!(o.values_of("name"), vec![&Value::from("sales")]);
        assert!(o.field("bogus").is_none());
        assert!(o.stored_size() > 8);
    }

    #[test]
    fn missing_field_rejected() {
        let (s, c) = fixtures::paper_schema();
        let r = Object::new(
            &s,
            Oid::new(c.division, 1),
            vec![("name", Value::from("x").into())],
        );
        assert!(r.is_err());
    }

    #[test]
    fn unknown_field_rejected() {
        let (s, c) = fixtures::paper_schema();
        let r = Object::new(
            &s,
            Oid::new(c.division, 1),
            vec![
                ("name", Value::from("x").into()),
                ("function", Value::from("y").into()),
                ("movings", Value::Int(1).into()),
                ("bogus", Value::Int(9).into()),
            ],
        );
        assert!(r.is_err());
    }

    #[test]
    fn multi_for_single_rejected() {
        let (s, c) = fixtures::paper_schema();
        let r = Object::new(
            &s,
            Oid::new(c.division, 1),
            vec![
                (
                    "name",
                    FieldValue::Multi(vec![Value::from("a"), Value::from("b")]),
                ),
                ("function", Value::from("y").into()),
                ("movings", Value::Int(1).into()),
            ],
        );
        assert!(r.is_err());
    }

    #[test]
    fn refs_of_extracts_references() {
        let (s, c) = fixtures::paper_schema();
        let comp = Oid::new(c.company, 7);
        let o = Object::new(
            &s,
            Oid::new(c.vehicle, 1),
            vec![
                ("color", Value::from("red").into()),
                ("max_speed", Value::Int(120).into()),
                ("weight", Value::Int(900).into()),
                ("availability", Value::from("ok").into()),
                ("man", FieldValue::Multi(vec![Value::Ref(comp)])),
            ],
        )
        .unwrap();
        assert_eq!(o.refs_of("man"), vec![comp]);
        assert_eq!(o.refs_of("color"), vec![]);
    }

    #[test]
    fn subclass_object_includes_inherited_fields() {
        let (s, c) = fixtures::paper_schema();
        let comp = Oid::new(c.company, 7);
        let o = Object::new(
            &s,
            Oid::new(c.bus, 1),
            vec![
                ("color", Value::from("red").into()),
                ("max_speed", Value::Int(120).into()),
                ("weight", Value::Int(900).into()),
                ("availability", Value::from("ok").into()),
                ("man", FieldValue::Multi(vec![Value::Ref(comp)])),
                ("seats", Value::Int(52).into()),
            ],
        )
        .unwrap();
        assert_eq!(o.values_of("seats"), vec![&Value::Int(52)]);
        assert_eq!(o.fields().count(), 6);
    }
}
