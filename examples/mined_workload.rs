//! Candidate-mining quickstart: run the advisor with a **mined
//! admission policy** (Apriori-style frequent-subpath mining over the
//! per-position query masses — DESIGN.md §5.17) against the full,
//! unmined candidate space on a chain forest, time both, and verify the
//! two headline invariants: support `0` reproduces the full plan
//! **bitwise**, and a positive support threshold skips real pricing
//! work while the plan stays within the miner's own cost bound.
//!
//! Run with `cargo run --release --example mined_workload`.

use oo_index_config::prelude::*;
use oo_index_config::sim::{synth_forest, ForestSpec};
use std::time::Instant;

fn main() {
    let spec = ForestSpec {
        roots: 32,
        paths: 2_000,
        depth: 10,
        fanout: 1,
        seed: 1994,
    };
    let w = synth_forest(&spec);
    println!(
        "workload: {} paths over {} disjoint depth-{} chain schemas",
        w.paths.len(),
        w.roots.len(),
        spec.depth,
    );

    // The full candidate space: every subpath of every path is interned
    // and priced.
    let mut full = w.advisor(CostParams::default());
    let t = Instant::now();
    let base = full.optimize();
    let full_elapsed = t.elapsed();
    println!(
        "full space:  cost {:.0}, {} candidates, {full_elapsed:.2?}",
        base.total_cost, base.candidates
    );

    // Support 0 admits everything — the identity, asserted bitwise.
    let mut identity = w.advisor(CostParams::default()).with_mining(MiningPolicy {
        min_support: 0.0,
        always_admit_owned: true,
    });
    identity
        .optimize()
        .assert_bit_identical_to(&base, "support 0 is the identity");
    println!("support 0:   mined plan == full plan (bitwise)");

    // A positive threshold drops spans that start in each path's
    // rarely-traversed prefix before the optimizer prices anything.
    let policy = MiningPolicy {
        min_support: 0.8,
        always_admit_owned: true,
    };
    let mut mined = w.advisor(CostParams::default()).with_mining(policy);
    let t = Instant::now();
    let plan = mined.optimize();
    let mined_elapsed = t.elapsed();
    let bound = mined.mining_cost_bound();
    println!(
        "support {}: cost {:.0}, {} ranks mined out, {} cells skipped, {mined_elapsed:.2?}",
        policy.min_support, plan.total_cost, plan.candidates_mined_out, plan.cells_skipped
    );
    // `OIC_MINE=0` (the kill switch CI exercises) turns the gate off, in
    // which case the mined arm is the identity too.
    if mined.mining_policy().is_gating() {
        assert!(plan.candidates_mined_out > 0, "the gate must engage");
        assert!(plan.cells_skipped > 0, "pricing must skip mined-out cells");
    } else {
        plan.assert_bit_identical_to(&base, "OIC_MINE=0 forces admit-all");
    }
    assert!(
        plan.total_cost <= base.total_cost + bound,
        "mined cost {} exceeds full cost {} + bound {bound}",
        plan.total_cost,
        base.total_cost
    );
    println!(
        "mined plan within the admission cost bound: {:.0} <= {:.0} + {bound:.0}",
        plan.total_cost, base.total_cost
    );
    println!(
        "speedup {:.2}x from admission alone — fewer cells, not cheaper cells",
        full_elapsed.as_secs_f64() / mined_elapsed.as_secs_f64()
    );
}
