//! Section 6 future work, implemented: index configurations for **several
//! paths at once**, consolidating physically identical subpath indexes.
//! `Pe = Per.owns.man.name` and `Pexa = Per.owns.man.divs.name` overlap on
//! the `Per.owns.man` prefix — if both optima index it identically, one
//! physical index serves both and its maintenance is paid once.
//!
//! ```sh
//! cargo run --example multi_path
//! ```

use oo_index_config::core::extensions::multipath::{optimize, PathCase};
use oo_index_config::prelude::*;
use oo_index_config::schema::fixtures;

fn main() {
    let (schema, _) = fixtures::paper_schema();

    // Path A: the paper's Pexa with its Figure 7 statistics and workload.
    let (pexa, chars_a) = oo_index_config::cost::characteristics::example51(&schema);
    let ld_a = oo_index_config::workload::example51_load(&schema, &pexa);

    // Path B: Pe, sharing Per.owns.man; Company indexed on `name` here.
    let pe = fixtures::paper_path_pe(&schema);
    let chars_b = PathCharacteristics::build(&schema, &pe, |c| match schema.class_name(c) {
        "Person" => ClassStats::new(200_000.0, 20_000.0, 1.0),
        "Vehicle" => ClassStats::new(10_000.0, 5_000.0, 3.0),
        "Bus" | "Truck" => ClassStats::new(5_000.0, 2_500.0, 2.0),
        _ => ClassStats::new(1_000.0, 1_000.0, 1.0), // Company.name
    });
    let ld_b = LoadDistribution::build(&schema, &pe, |c| match schema.class_name(c) {
        "Person" => Triplet::new(0.4, 0.1, 0.1),
        "Vehicle" => Triplet::new(0.2, 0.0, 0.05),
        "Bus" => Triplet::new(0.05, 0.05, 0.1),
        "Truck" => Triplet::new(0.0, 0.1, 0.0),
        _ => Triplet::new(0.15, 0.05, 0.05),
    });

    let params = CostParams::paper();
    let cases = vec![
        PathCase {
            path: &pexa,
            model: CostModel::new(&schema, &pexa, &chars_a, params),
            ld: &ld_a,
        },
        PathCase {
            path: &pe,
            model: CostModel::new(&schema, &pe, &chars_b, params),
            ld: &ld_b,
        },
    ];
    let plan = optimize(&schema, &cases);

    println!("multi-path physical design for {pexa} and {pe}\n");
    for (i, (case, result)) in cases.iter().zip(&plan.per_path).enumerate() {
        println!(
            "path {}: {}  (cost {:.2}, {} of {} configurations evaluated)",
            i + 1,
            result.best.render(&schema, case.path),
            result.cost,
            result.evaluated,
            result.candidate_space,
        );
    }
    println!("\nindependent total: {:.2}", plan.independent_cost);
    if plan.shared.is_empty() {
        println!("no physically identical subpath indexes across the optima");
    } else {
        for s in &plan.shared {
            let steps: Vec<String> = s
                .signature
                .steps
                .iter()
                .map(|&(c, a)| format!("{}.{}", schema.class_name(c), schema.attr_name(a)))
                .collect();
            println!(
                "shared {} index on [{}] across paths {:?}: maintenance saving {:.2}",
                s.signature.choice,
                steps.join(" → "),
                s.owners.iter().map(|i| i + 1).collect::<Vec<_>>(),
                s.saving
            );
        }
    }
    println!("consolidated total: {:.2}", plan.consolidated_cost);

    // The workload-scale engine: both paths through one shared candidate
    // space, duplicate physical subpaths priced once *during* selection.
    let mut wadv = WorkloadAdvisor::new(&schema, params)
        .with_stats(|c| match schema.class_name(c) {
            "Person" => ClassStats::new(200_000.0, 20_000.0, 1.0),
            "Vehicle" => ClassStats::new(10_000.0, 5_000.0, 3.0),
            "Bus" | "Truck" => ClassStats::new(5_000.0, 2_500.0, 2.0),
            "Company" => ClassStats::new(1_000.0, 250.0, 4.0),
            "Division" => ClassStats::new(1_000.0, 1_000.0, 1.0),
            _ => ClassStats::new(1.0, 1.0, 1.0),
        })
        .with_maintenance(|_| (0.1, 0.08));
    wadv.add_path(pexa.clone(), |_| 0.2);
    wadv.add_path(pe.clone(), |_| 0.25);
    let wplan = wadv.optimize();
    println!("\n--- workload advisor (shared candidate space) ---\n");
    print!("{}", wplan.render(&schema));
}
