//! Space-budgeted selection, end to end: the single-path `(cost, size)`
//! Pareto frontier of the paper's Example 5.1, then a small workload
//! optimized under shrinking page budgets with
//! `WorkloadAdvisor::optimize_with_budget` (Lagrangian bisection +
//! frontier repair; a shared physical index's footprint — like its
//! maintenance — is counted once).
//!
//! ```sh
//! cargo run --release --example budgeted_workload
//! ```

use oo_index_config::prelude::*;
use oo_index_config::schema::fixtures;

fn main() {
    // ---- single path: the whole cost-vs-footprint frontier at once ------
    let (schema, _) = fixtures::paper_schema();
    let (pexa, chars) = oo_index_config::cost::characteristics::example51(&schema);
    let ld = oo_index_config::workload::example51_load(&schema, &pexa);
    let model = CostModel::new(&schema, &pexa, &chars, CostParams::paper());
    let matrix = CostMatrix::build(&model, &ld);
    let frontier = frontier_dp(&matrix);
    println!(
        "Pexa = {pexa}: cost–size Pareto frontier ({} points)\n",
        frontier.points.len()
    );
    for p in &frontier.points {
        println!(
            "  cost {:>10.2}  pages {:>8.0}  {}",
            p.cost,
            p.size,
            p.config.render(&schema, &pexa)
        );
    }
    let unbounded = frontier.min_cost();
    let half = frontier
        .within_budget(unbounded.size / 2.0)
        .expect("a leaner configuration exists");
    println!(
        "\nhalving the footprint ({:.0} → {:.0} pages) costs {:.2}x\n",
        unbounded.size,
        half.size,
        half.cost / unbounded.cost
    );

    // ---- workload scale: shared budget across paths ---------------------
    let pe = fixtures::paper_path_pe(&schema);
    let owns = Path::parse(&schema, "Person", &["owns"]).unwrap();
    let mut adv = WorkloadAdvisor::new(&schema, CostParams::paper())
        .with_stats(|c| match schema.class_name(c) {
            "Person" => ClassStats::new(200_000.0, 20_000.0, 1.0),
            "Vehicle" => ClassStats::new(10_000.0, 5_000.0, 3.0),
            "Bus" | "Truck" => ClassStats::new(5_000.0, 2_500.0, 2.0),
            "Company" => ClassStats::new(1_000.0, 250.0, 4.0),
            "Division" => ClassStats::new(1_000.0, 1_000.0, 1.0),
            _ => ClassStats::new(1.0, 1.0, 1.0),
        })
        .with_maintenance(|_| (0.15, 0.12));
    adv.add_path(pexa.clone(), |_| 0.2);
    adv.add_path(pe.clone(), |_| 0.25);
    adv.add_path(owns.clone(), |_| 0.35);
    let unconstrained = adv.optimize();
    println!(
        "workload: {} paths, unconstrained cost {:.2}, footprint {:.0} pages \
         ({} physical indexes)\n",
        unconstrained.paths.len(),
        unconstrained.total_cost,
        unconstrained.size_pages,
        unconstrained.physical_indexes
    );
    for frac in [1.0f64, 0.75, 0.3] {
        let budget = unconstrained.size_pages * frac;
        let b = adv.optimize_with_budget(budget);
        assert!(b.plan.size_pages <= budget || !b.feasible);
        let verdict = if b.feasible {
            "within budget"
        } else {
            "infeasible — leanest plan shown"
        };
        println!(
            "budget {:>3.0}% = {:>7.0} pages: cost {:>9.2} ({:.2}x), \
             footprint {:>7.0} pages, λ {:.4} — {}",
            frac * 100.0,
            budget,
            b.plan.total_cost,
            b.cost_ratio(),
            b.plan.size_pages,
            b.lambda,
            verdict
        );
        for p in &b.plan.paths {
            println!("    {}", p.selection.render(&schema, &p.path));
        }
    }
    println!(
        "\nthe budget squeezes fat NIX spans into leaner MX/MIX pieces path by \
         path, cheapest-regret first — never by dropping coverage."
    );
}
