//! The paper's running example, end to end on *real* data structures:
//! generate a vehicle-registry database (Figure 1 schema, Figure 7 shape),
//! build physical indexes, run the motivating query — “retrieve the persons
//! who own a bus manufactured by the company Fiat” — and compare measured
//! page accesses across the organizations and the naive evaluator.
//!
//! ```sh
//! cargo run --release --example vehicle_registry
//! ```

use oo_index_config::index::{
    MultiIndex, MultiInheritedIndex, NaivePathEvaluator, NestedInheritedIndex, PathIndex,
};
use oo_index_config::prelude::*;
use oo_index_config::schema::fixtures;
use oo_index_config::sim::{generate, scale_chars, GenSpec};

fn main() {
    let (schema, classes) = fixtures::paper_schema();
    let path = fixtures::paper_path_pe(&schema); // Per.owns.man.name
    let (_, chars_full) = oo_index_config::cost::characteristics::example51(&schema);
    // Laptop-size rendition of the Figure 7 database (2% scale), with the
    // Pe path's characteristics (Company.name is the ending attribute).
    let chars = {
        let scaled = scale_chars(&chars_full, 0.02);
        PathCharacteristics::build(&schema, &path, |c| {
            // Reuse scaled stats; Company indexed on `name` here.
            let pos = [
                ("Person", (1usize, 0usize)),
                ("Vehicle", (2, 0)),
                ("Bus", (2, 1)),
                ("Truck", (2, 2)),
                ("Company", (3, 0)),
            ];
            let name = schema.class_name(c);
            let (l, x) = pos.iter().find(|(n, _)| *n == name).unwrap().1;
            *scaled.stats(l, x)
        })
    };
    let spec = GenSpec {
        page_size: 1024,
        seed: 2024,
    };
    let mut db = generate(&schema, &path, &chars, &spec);
    println!(
        "database: {} persons, {} vehicles ({} buses), {} companies, {} heap pages",
        db.heap.count(classes.person),
        db.heap.count(classes.vehicle),
        db.heap.count(classes.bus),
        db.heap.count(classes.company),
        db.store.live_pages(),
    );

    let sub = SubpathId { start: 1, end: 3 };
    let query_value = db.ending_values[0].clone();
    println!("\nquery: persons owning a vehicle manufactured by the company named {query_value}\n");

    // Build each organization and measure the same query.
    let mx = MultiIndex::build(&schema, &path, sub, &mut db.store, &db.heap);
    let mix = MultiInheritedIndex::build(&schema, &path, sub, &mut db.store, &db.heap);
    let nix = NestedInheritedIndex::build(&schema, &path, sub, &mut db.store, &db.heap);
    let naive = NaivePathEvaluator::new(&schema, &path, sub);

    let keys = vec![query_value.clone()];
    let run = |name: &str, f: &dyn Fn() -> Vec<Oid>| {
        db.store.begin_op();
        let oids = f();
        let stats = db.store.end_op();
        println!(
            "{name:<8} {:>4} results   {:>6} distinct page reads",
            oids.len(),
            stats.distinct_reads
        );
        oids
    };

    // Bus owners: find buses made by X, then their owners. Each index
    // answers it with a person-targeted lookup whose vehicle step is
    // restricted per organization automatically; here we demonstrate the
    // person query (whole-hierarchy traversal at position 2).
    let r_mx = run("MX", &|| mx.lookup(&db.store, &keys, classes.person, false));
    let r_mix = run("MIX", &|| {
        mix.lookup(&db.store, &keys, classes.person, false)
    });
    let r_nix = run("NIX", &|| {
        nix.lookup(&db.store, &keys, classes.person, false)
    });
    let r_naive = run("naive", &|| {
        naive.lookup(&db.store, &db.heap, &keys, classes.person, false)
    });
    assert_eq!(r_mx, r_mix);
    assert_eq!(r_mx, r_nix);
    assert_eq!(r_mx, r_naive);
    println!("\nall four evaluations agree on {} persons", r_mx.len());

    // Index sizes (pages), the space side of the trade-off.
    println!(
        "\nindex sizes: MX {} pages, MIX {} pages, NIX {} pages",
        mx.total_pages(),
        mix.total_pages(),
        nix.total_pages()
    );

    // Maintenance: delete a company and watch the boundary effect (CMD).
    let victim = db.heap.oids_of(classes.company)[0];
    let obj = db.heap.peek(victim).unwrap().clone();
    let mut nix = nix;
    db.store.begin_op();
    nix.on_delete(&mut db.store, &obj);
    let del_stats = db.store.end_op();
    println!(
        "\ndeleting company {victim}: NIX maintenance touched {} pages \
         (primary record removal + auxiliary pointer cleanup)",
        del_stats.total()
    );
}
