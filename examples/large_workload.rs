//! Large-workload quickstart: run the advisor's **sharded engine**
//! (component descent + dominance pruning + per-signature query bases —
//! DESIGN.md §5.15) against the legacy global engine on a 5000-path chain
//! forest, time both, and verify the headline invariant: the sharded plan
//! is the **same plan** — same cost bits, same selections, same shared
//! outcomes — it just arrives much sooner. Sharding is on by default;
//! `OIC_SHARDS=1` ("one shard") is the legacy off-switch, and
//! `with_sharding(..)` chooses explicitly, as here.
//!
//! Run with `cargo run --release --example large_workload`.

use oo_index_config::prelude::*;
use oo_index_config::sim::{synth_forest, ForestSpec};
use std::time::Instant;

fn main() {
    let w = synth_forest(&ForestSpec {
        roots: 32,
        paths: 5_000,
        depth: 8,
        fanout: 1,
        seed: 1994,
    });
    println!(
        "workload: {} paths over {} disjoint depth-8 chain schemas",
        w.paths.len(),
        w.roots.len()
    );

    let mut sharded = w.advisor(CostParams::default()).with_sharding(true);
    let t = Instant::now();
    let plan = sharded.optimize();
    let sharded_elapsed = t.elapsed();
    println!(
        "sharded engine: cost {:.0}, {} components (largest {}), {} cells pruned, {sharded_elapsed:.2?}",
        plan.total_cost, plan.components, plan.largest_component, plan.candidates_pruned
    );

    let mut legacy = w.advisor(CostParams::default()).with_sharding(false);
    let t = Instant::now();
    let legacy_plan = legacy.optimize();
    let legacy_elapsed = t.elapsed();
    println!(
        "legacy engine:  cost {:.0}, prices and descends globally, {legacy_elapsed:.2?}",
        legacy_plan.total_cost
    );

    // The same plan, not merely one of equal cost: selections, cost bits
    // and shared-index outcomes all match (the engines may do different
    // amounts of work, so the bit-level *work-audit* comparison does not
    // apply across engines — `assert_same_plan` is the cross-engine
    // contract).
    plan.assert_same_plan(&legacy_plan, "large_workload example");
    println!(
        "sharded plan == unsharded plan ({} paths, {} physical indexes)",
        plan.paths.len(),
        plan.physical_indexes
    );
    println!(
        "speedup {:.2}x on {} CPU(s) — the gain is algorithmic, not parallel",
        legacy_elapsed.as_secs_f64() / sharded_elapsed.as_secs_f64(),
        std::thread::available_parallelism().map_or(1, |n| n.get())
    );
}
