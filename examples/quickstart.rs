//! Quickstart: define a schema, a path and a workload; ask the advisor for
//! the optimal index configuration.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use oo_index_config::prelude::*;

fn main() {
    // --- 1. Schema: a small order-management aggregation hierarchy. -----
    //     Order → Customer → Region (with Customer specialized into
    //     RetailCustomer / CorporateCustomer).
    let mut b = SchemaBuilder::new();
    let region = b.declare("Region").unwrap();
    b.atomic(region, "name", AtomicType::Str).unwrap();
    b.atomic(region, "tax_rate", AtomicType::Float).unwrap();

    let customer = b.declare("Customer").unwrap();
    b.atomic(customer, "name", AtomicType::Str).unwrap();
    b.reference(customer, "region", region, Cardinality::Single)
        .unwrap();
    let retail = b.subclass("RetailCustomer", customer, vec![]).unwrap();
    b.atomic(retail, "loyalty", AtomicType::Int).unwrap();
    let corporate = b.subclass("CorporateCustomer", customer, vec![]).unwrap();
    b.atomic(corporate, "vat_id", AtomicType::Str).unwrap();

    let order = b.declare("Order").unwrap();
    b.atomic(order, "total", AtomicType::Int).unwrap();
    b.reference(order, "customer", customer, Cardinality::Single)
        .unwrap();
    let schema = b.build().unwrap();

    // --- 2. The query path: orders by region name. ----------------------
    //     "Retrieve the orders of customers in region X" ⇒
    //     Order.customer.region.name (a nested predicate, Definition 2.1).
    let path = Path::parse(&schema, "Order", &["customer", "region", "name"]).unwrap();
    println!("path: {path}  (len {})", path.len());

    // --- 3. Database characteristics (n, d, nin per class). -------------
    let chars = PathCharacteristics::build(&schema, &path, |c| {
        match schema.class_name(c) {
            "Order" => ClassStats::new(500_000.0, 40_000.0, 1.0),
            "Customer" => ClassStats::new(30_000.0, 200.0, 1.0),
            "RetailCustomer" => ClassStats::new(8_000.0, 150.0, 1.0),
            "CorporateCustomer" => ClassStats::new(2_000.0, 100.0, 1.0),
            _ => ClassStats::new(200.0, 200.0, 1.0), // Region
        }
    });

    // --- 4. Workload: order-entry heavy, with regional reporting. -------
    let ld = LoadDistribution::build(&schema, &path, |c| match schema.class_name(c) {
        "Order" => Triplet::new(0.5, 2.0, 1.5), // many inserts/deletes
        "Customer" => Triplet::new(0.2, 0.02, 0.01),
        "RetailCustomer" => Triplet::new(0.05, 0.01, 0.01),
        "CorporateCustomer" => Triplet::new(0.05, 0.005, 0.005),
        _ => Triplet::new(0.1, 0.0, 0.0), // Region: static
    });

    // --- 5. Recommend. ---------------------------------------------------
    let rec = Advisor::new(&schema, &path, &chars, &ld)
        .with_params(CostParams::default())
        .verify_exhaustively(true)
        .recommend();
    println!("{rec}");

    // The same machinery, one level down: inspect any single cell.
    let model = CostModel::new(&schema, &path, &chars, CostParams::default());
    let full = SubpathId {
        start: 1,
        end: path.len(),
    };
    for org in Org::ALL {
        println!(
            "whole-path {org}: query@Order = {:.2} pages, delete@Order = {:.2} pages",
            model.retrieval(org, full, 1, 0),
            model.maint_delete(org, full, 1, 0),
        );
    }
}
