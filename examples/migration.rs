//! Migration-scheduling quickstart: from a re-optimized target plan to an
//! ordered, budgeted deployment. The advisor re-targets after an update
//! surge; the `MigrationPlanner` turns the `(current, target)` pair into
//! build/drop waves under a concurrency envelope, prices every interim
//! state bit-consistently with `price_plan`, and beats the naive
//! build-all-then-drop ordering on cumulative interim cost. A retune
//! mid-migration re-targets the remaining steps in place.
//!
//! Run with `cargo run --release --example migration`.

use oo_index_config::prelude::*;
use oo_index_config::sim::{synth_workload, WorkloadSpec};

fn main() {
    // A 60-path workload over a synthetic class tree, optimized once: this
    // is the configuration assumed to be physically deployed.
    let w = synth_workload(&WorkloadSpec {
        paths: 60,
        depth: 5,
        fanout: 3,
        seed: 1994,
    });
    let mut adv = w.advisor(CostParams::default());
    let current = adv.optimize();
    println!(
        "deployed: {} paths, {} physical indexes, cost {:.2}",
        current.paths.len(),
        current.physical_indexes,
        current.total_cost
    );

    // An update surge: every class's insert/delete rates jump, the advisor
    // re-targets, and the gap between the two plans is real physical work.
    for c in 0..adv.class_count() {
        adv.update_rates(ClassId(c as u32), (1.2, 0.5));
    }
    let target = adv.reoptimize();
    println!(
        "re-targeted after update surge: cost {:.2} (deployed plan now {:.2})\n",
        target.total_cost,
        adv.price_plan(&current)
    );

    // Schedule the migration: at most two concurrent builds, unlimited
    // space. Build I/O is priced in pages from the PR 4 size model, and
    // each wave's workload cost comes from the same memos `optimize()`
    // quotes from — `initial_cost`/`final_cost` equal `price_plan` bitwise.
    let envelope = MigrationEnvelope {
        concurrent_builds: 2,
        space_pages: f64::INFINITY,
    };
    let planner = MigrationPlanner::new(&adv, &current, &target).expect("same path set");
    let greedy = planner.schedule(envelope).expect("schedulable");
    let naive = planner.naive_schedule(envelope).expect("schedulable");
    assert_eq!(
        greedy.final_cost.to_bits(),
        adv.price_plan(&target).to_bits()
    );

    println!(
        "schedule: {} builds, {} drops in {} waves ({:.0} pages of build I/O)",
        greedy.builds, greedy.drops, greedy.waves, greedy.build_pages
    );
    for step in greedy.steps.iter().take(6) {
        println!(
            "  wave {:>2}: {:?} {:?} ({:?}, {:.0} pages)",
            step.wave, step.action, step.steps, step.org, step.pages
        );
    }
    if greedy.steps.len() > 6 {
        println!("  … {} more steps", greedy.steps.len() - 6);
    }

    // The yardstick: cumulative interim cost (Σ wave duration × workload
    // cost during that wave) against the naive lexicographic
    // build-everything-then-drop ordering of the same physical work.
    assert!(greedy.interim_cost <= naive.interim_cost);
    println!(
        "\ninterim cost ≤ naive ordering: {:.0} vs {:.0} \
         (excess over steady state: {:.0} vs {:.0})",
        greedy.interim_cost, naive.interim_cost, greedy.interim_excess, naive.interim_excess
    );

    // Walk the first wave, then retune mid-migration: the workload drifts
    // again, and `retarget` re-aims the remaining steps without forgetting
    // what was already built.
    let mut live = planner.clone();
    live.advance(envelope)
        .expect("schedulable")
        .expect("steps remain");
    for c in 0..adv.class_count() {
        adv.update_rates(ClassId(c as u32), (0.9, 0.4));
    }
    let retargeted = adv.reoptimize();
    live.retarget(&adv, &retargeted)
        .expect("path set unchanged");
    let remaining = live.schedule(envelope).expect("schedulable");
    assert_eq!(
        remaining.final_cost.to_bits(),
        adv.price_plan(&retargeted).to_bits()
    );
    println!(
        "mid-migration retune: {} steps remain, landing on the new target \
         (cost {:.2}, bit-equal to the advisor's quote)",
        remaining.steps.len(),
        remaining.final_cost
    );

    while live.advance(envelope).expect("schedulable").is_some() {}
    assert!(live.is_complete());
    assert_eq!(
        live.current_cost().to_bits(),
        adv.price_plan(&retargeted).to_bits()
    );
    println!(
        "migration complete: deployed cost {:.2} == target quote, bitwise",
        live.current_cost()
    );
}
