//! Analytic-vs-measured validation: run real queries, insertions and
//! deletions against each index organization on a generated database and
//! compare observed page accesses with the Section 3 cost model.
//!
//! ```sh
//! cargo run --release --example model_validation
//! ```

use oo_index_config::cost::CostParams;
use oo_index_config::prelude::Org;
use oo_index_config::schema::fixtures;
use oo_index_config::sim::{scale_chars, validate, GenSpec};

fn main() {
    let (schema, _) = fixtures::paper_schema();
    let (path, chars) = oo_index_config::cost::characteristics::example51(&schema);
    // 2% of the paper's Figure 7 database: 4 000 persons, 400 vehicles.
    let small = scale_chars(&chars, 0.02);
    let params = CostParams::calibrated(1024.0);
    let spec = GenSpec {
        page_size: 1024,
        seed: 99,
    };

    println!("analytic model vs measured page accesses (whole-path indexes, 2% Figure 7 DB)\n");
    println!(
        "{:<5} {:<10} {:>10} {:>10} {:>7}  (samples)",
        "org", "operation", "predicted", "measured", "ratio"
    );
    for org in Org::ALL {
        let rows = validate::validate_org(&schema, &path, &small, params, org, &spec, 12);
        for r in &rows {
            println!(
                "{:<5} {:<10} {:>10.2} {:>10.2} {:>7.2}  ({})",
                r.org.to_string(),
                r.op,
                r.predicted,
                r.measured,
                r.ratio(),
                r.samples
            );
        }
        println!();
    }

    let (naive, indexed) = validate::naive_vs_indexed(&schema, &path, &small, Org::Nix, &spec, 8);
    println!(
        "motivation (Section 1): naive navigation {naive:.0} pages/query vs \
         NIX {indexed:.1} pages/query ({:.0}x)",
        naive / indexed
    );
}
