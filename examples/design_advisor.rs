//! Physical-design sweep: how the optimal index configuration shifts as the
//! workload moves from query-only to update-only. Demonstrates the central
//! trade-off of the paper — NIX serves queries with one lookup but pays
//! heavily for deep-path maintenance; MX is the reverse; the optimum splits
//! the path and mixes organizations.
//!
//! ```sh
//! cargo run --example design_advisor
//! ```

use oo_index_config::prelude::*;
use oo_index_config::schema::fixtures;

fn main() {
    let (schema, _) = fixtures::paper_schema();
    let (path, chars) = oo_index_config::cost::characteristics::example51(&schema);
    let params = CostParams::paper();

    println!("workload sweep on {path} (Figure 7 database statistics)\n");
    println!(
        "{:<12} {:>10}  {:<58} {:>8}",
        "query:update", "best cost", "optimal configuration", "vs NIX"
    );

    for pct_query in [100, 90, 75, 50, 25, 10, 0] {
        let q = pct_query as f64 / 100.0;
        let u = (100 - pct_query) as f64 / 100.0;
        // Spread the mass uniformly over the scope classes.
        let ld = LoadDistribution::uniform(&schema, &path, Triplet::new(q, u / 2.0, u / 2.0));
        let rec = Advisor::new(&schema, &path, &chars, &ld)
            .with_params(params)
            .verify_exhaustively(true)
            .recommend();
        let nix_cost = rec
            .whole_path
            .iter()
            .find(|(o, _)| *o == Org::Nix)
            .map(|&(_, c)| c)
            .unwrap();
        println!(
            "{:>3}% : {:>3}%  {:>10.2}  {:<58} {:>7.2}x",
            pct_query,
            100 - pct_query,
            rec.selection.cost,
            rec.config_rendering,
            nix_cost / rec.selection.cost,
        );
    }

    println!("\nwith the Section 6 no-index option enabled:\n");
    for pct_query in [10, 1, 0] {
        let q = pct_query as f64 / 100.0;
        let u = (100 - pct_query) as f64 / 100.0;
        let ld = LoadDistribution::uniform(&schema, &path, Triplet::new(q, u / 2.0, u / 2.0));
        let rec = Advisor::new(&schema, &path, &chars, &ld)
            .with_params(params)
            .allow_no_index(true)
            .recommend();
        println!(
            "{:>3}% queries: cost {:>8.2}  {}",
            pct_query, rec.selection.cost, rec.config_rendering
        );
    }
}
