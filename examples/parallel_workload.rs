//! Parallel-optimization quickstart: run the workload advisor over the
//! same 300-path synthetic workload with the sequential engine
//! (`with_threads(1)`) and with an 8-lane thread pool, time both, and
//! verify the headline invariant — the parallel plan is **bit-identical**
//! to the sequential one (DESIGN.md §5.13). Thread count is a wall-clock
//! knob, never an answer knob; `OIC_THREADS` sets the default for
//! advisors that don't choose explicitly.
//!
//! Run with `cargo run --release --example parallel_workload`.

use oo_index_config::prelude::*;
use oo_index_config::sim::{synth_workload, WorkloadSpec};
use std::time::Instant;

fn main() {
    let w = synth_workload(&WorkloadSpec {
        paths: 300,
        depth: 5,
        fanout: 3,
        seed: 1994,
    });
    println!(
        "workload: {} paths ({} subpath instances) over a depth-5 class tree",
        w.paths.len(),
        w.subpath_instances()
    );

    let mut sequential = w.advisor(CostParams::default()).with_threads(1);
    let t = Instant::now();
    let seq_plan = sequential.optimize();
    let seq_elapsed = t.elapsed();
    println!(
        "sequential engine:  cost {:.0}, {} physical indexes over {} candidates, {seq_elapsed:.2?}",
        seq_plan.total_cost, seq_plan.physical_indexes, seq_plan.candidates
    );

    let mut parallel = w.advisor(CostParams::default()).with_threads(8);
    let t = Instant::now();
    let par_plan = parallel.optimize();
    let par_elapsed = t.elapsed();
    println!(
        "8-lane thread pool: cost {:.0}, {} physical indexes over {} candidates, {par_elapsed:.2?}",
        par_plan.total_cost, par_plan.physical_indexes, par_plan.candidates
    );

    // Bit-identical, not merely close: same floats, same selections, same
    // audited work — the canonical checker the tests and benches use.
    seq_plan.assert_bit_identical_to(&par_plan, "parallel_workload example");
    println!(
        "parallel plan == sequential plan (bit-identical across {} paths, {} sweeps)",
        par_plan.paths.len(),
        par_plan.sweeps
    );
    let cpus = std::thread::available_parallelism().map_or(1, |n| n.get());
    println!(
        "host CPUs: {cpus} — speedup {:.2}x (thread counts change wall-clock only)",
        seq_elapsed.as_secs_f64() / par_elapsed.as_secs_f64()
    );
}
