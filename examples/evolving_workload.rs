//! Evolving-workload quickstart: drive the online `WorkloadAdvisor`
//! through a few epochs of drift — paths arriving and departing, class
//! statistics and update rates moving — re-optimizing incrementally after
//! each batch and checking the warm plan against a cold rebuild.
//!
//! Run with `cargo run --release --example evolving_workload`.

use oo_index_config::prelude::*;
use oo_index_config::schema::fixtures;

fn main() {
    let (schema, _) = fixtures::paper_schema();
    let stats = |c: ClassId| match schema.class_name(c) {
        "Person" => ClassStats::new(200_000.0, 20_000.0, 1.0),
        "Vehicle" => ClassStats::new(10_000.0, 5_000.0, 3.0),
        "Bus" | "Truck" => ClassStats::new(5_000.0, 2_500.0, 2.0),
        "Company" => ClassStats::new(1_000.0, 250.0, 4.0),
        "Division" => ClassStats::new(1_000.0, 1_000.0, 1.0),
        _ => ClassStats::new(1.0, 1.0, 1.0),
    };

    // Epoch 1 — the initial workload: the paper's two overlapping paths.
    let pexa = Path::parse(&schema, "Person", &["owns", "man", "divs", "name"]).unwrap();
    let pe = Path::parse(&schema, "Person", &["owns", "man", "name"]).unwrap();
    let mut advisor = WorkloadAdvisor::new(&schema, CostParams::default())
        .with_stats(stats)
        .with_maintenance(|_| (0.1, 0.1));
    let pexa_id = advisor.add_path(pexa, |_| 0.2);
    advisor.add_path(pe, |_| 0.3);
    let plan = advisor.optimize();
    println!("── epoch 1: initial workload ──");
    print!("{}", plan.render(&schema));

    // Epoch 2 — traffic shifts: the Vehicle population quadruples (stat
    // drift), Person churn accelerates (rate drift), a new path arrives
    // and Pexa's query mix cools down.
    let vehicle = schema.class_by_name("Vehicle").unwrap();
    let person = schema.class_by_name("Person").unwrap();
    advisor.update_stats(vehicle, ClassStats::new(40_000.0, 20_000.0, 3.0));
    advisor.update_rates(person, (0.35, 0.25));
    advisor.add_path(
        Path::parse(&schema, "Company", &["divs", "name"]).unwrap(),
        |_| 0.4,
    );
    advisor.update_query_rates(pexa_id, |_| 0.05);
    let warm = advisor.reoptimize();
    println!("\n── epoch 2: stat/rate drift + arrival (warm reoptimize) ──");
    print!("{}", warm.render(&schema));

    // Epoch 3 — the heavy path departs; its exclusive candidates are freed
    // from the shared space.
    advisor.remove_path(pexa_id).expect("pexa is live");
    let warm = advisor.reoptimize();
    println!("\n── epoch 3: departure (warm reoptimize) ──");
    print!("{}", warm.render(&schema));

    // The anchor invariant: the incremental plan costs exactly what a cold
    // rebuild of the mutated workload would compute.
    let cold = advisor.rebuild().optimize();
    let drift = (warm.total_cost - cold.total_cost).abs();
    assert!(drift < 1e-9 * cold.total_cost.max(1.0));
    println!(
        "\nwarm reoptimize == cold rebuild: {:.2} == {:.2} \
         ({} of {} paths repriced in the warm pass)",
        warm.total_cost,
        cold.total_cost,
        warm.repriced_paths,
        warm.paths.len()
    );
}
