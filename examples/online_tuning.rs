//! Online-tuning quickstart: close the loop from captured traffic to
//! re-optimization. An oracle advisor is told every rate change directly;
//! a tuned advisor never sees a rate mutation — it re-learns the drifting
//! rates from a captured event stream through an `OnlineTuner` and
//! re-optimizes when the drift policy trips. After the final retune the
//! two plans must be the same plan.
//!
//! Run with `cargo run --release --example online_tuning`.

use oo_index_config::prelude::*;
use oo_index_config::sim::{synth_workload, DriftSim, DriftSpec, WorkloadSpec};

fn main() {
    // A 40-path workload over a synthetic class tree, plus a drift spec:
    // each epoch a couple of paths arrive/depart and — crucially — the
    // update and query rates move *without telling the tuned advisor*.
    let w = synth_workload(&WorkloadSpec {
        paths: 40,
        depth: 4,
        fanout: 3,
        seed: 1994,
    });
    let spec = DriftSpec {
        arrivals: 2,
        departures: 2,
        stat_drifts: 1,
        rate_drifts: 2,
        query_drifts: 4,
        seed: 41,
    };

    let mut oracle = w.advisor(CostParams::default());
    let mut tuned = w.advisor(CostParams::default());
    let cold = oracle.optimize();
    tuned.optimize();
    println!(
        "cold start: {} paths, {} candidates, cost {:.2}\n",
        cold.paths.len(),
        cold.candidates,
        cold.total_cost
    );

    // Same-seed simulators: the oracle gets every change through the
    // mutation API; the tuned side gets rate drift only as 64 stationary
    // capture windows per epoch, which the tuner folds into exponentially
    // decayed estimates.
    let mut sim_oracle = DriftSim::new(&w, spec.clone());
    let mut sim_tuned = DriftSim::new(&w, spec);
    let mut tuner = OnlineTuner::new(EstimatorConfig::default(), TuningPolicy::default());
    sim_tuned.enable_traffic(&tuned, &mut tuner);

    for epoch in 1..=4u32 {
        let churn = sim_oracle.step(&mut oracle);
        let oracle_plan = oracle.reoptimize();
        let (_, tuned_plan) = sim_tuned.step_traffic(&mut tuned, &mut tuner, 64);
        println!(
            "epoch {epoch}: {} mutations, oracle cost {:.2}, tuner {} (retunes so far: {})",
            churn.total(),
            oracle_plan.total_cost,
            if tuned_plan.is_some() {
                "re-optimized"
            } else {
                "held the plan"
            },
            tuner.retunes()
        );
    }

    // Final alignment: force one retune from whatever the estimator holds.
    // 64 stationary windows at smoothing 0.5 converge the estimates to the
    // true rates bitwise, so the tuned advisor must now select exactly the
    // oracle's plan — same selections, same physical indexes.
    let tuned_final = tuner.force_retune(&mut tuned);
    let oracle_final = oracle.reoptimize();
    assert_eq!(oracle_final.physical_indexes, tuned_final.physical_indexes);
    let matching = oracle_final
        .paths
        .iter()
        .zip(&tuned_final.paths)
        .filter(|(o, t)| o.id == t.id && o.selection.pairs() == t.selection.pairs())
        .count();
    assert_eq!(matching, oracle_final.paths.len(), "selections diverged");
    println!(
        "\ntuned plan == oracle plan: {} paths, {} physical indexes, \
         every selection identical (cost {:.2} vs {:.2})",
        oracle_final.paths.len(),
        oracle_final.physical_indexes,
        tuned_final.total_cost,
        oracle_final.total_cost
    );

    // What-if: price a hypothetical candidate without adopting anything.
    let probe = &oracle_final.paths[0];
    let whole = SubpathId {
        start: 1,
        end: probe.path.len(),
    };
    let report = oracle.what_if(&probe.path, whole);
    println!(
        "\nwhat-if on {} (whole path, {}):",
        probe.path.display(),
        if report.adopted {
            "adopted — quoted from the live memos"
        } else {
            "hypothetical — priced standalone, nothing installed"
        }
    );
    for org in Org::ALL {
        println!(
            "  {org:?}: maintenance {:.3}, {:.0} pages, {} subscriber(s)",
            report.maintenance[org.index()],
            report.size_pages[org.index()],
            report.subscribers.len()
        );
    }
}
