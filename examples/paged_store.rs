//! Durable paged storage, end to end: build a file-backed B-tree of
//! vehicle-registry owners, commit it, drop every in-memory handle, then
//! reopen the file cold and answer point and range queries from disk.
//!
//! The cache is sized by `OIC_PAGE_CACHE` (default 256 frames); run with
//! `OIC_PAGE_CACHE=2` to watch the eviction/physical-read counters work
//! for a tree much larger than its cache.
//!
//! ```sh
//! cargo run --release --example paged_store
//! ```

use oo_index_config::pager::FilePager;
use oo_index_config::prelude::*;
use oo_index_config::storage::paged::PageStore;

const PAGE_SIZE: usize = 512;
const OWNERS: u32 = 2_000;

fn key(i: u32) -> Vec<u8> {
    format!("owner-{i:06}").into_bytes()
}

fn main() {
    let dir = std::env::temp_dir().join(format!("oic-paged-store-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create temp dir");
    let path = dir.join("registry.oic");

    // Phase 1: build, commit, drop.
    {
        let pager = FilePager::open_path(&path, PAGE_SIZE).expect("create store");
        let mut tree = PagedBTree::open(pager).expect("open tree");
        for i in 0..OWNERS {
            let k = key(i * 37 % OWNERS);
            tree.insert(&k, format!("vehicle-{i}").as_bytes())
                .expect("insert");
        }
        // Simulate churn: deregister a third of the owners.
        for i in (0..OWNERS).step_by(3) {
            tree.remove(&key(i)).expect("remove");
        }
        tree.commit().expect("commit");
        let stats = tree.store_mut().io_stats();
        println!(
            "built: {} owners in {} pages (height {}), {} physical writes, {} evictions",
            tree.len(),
            tree.store_mut().live_pages(),
            tree.height(),
            stats.physical_writes,
            stats.evictions,
        );
    } // tree and pager dropped here; only the file remains.

    // Phase 2: reopen from the file alone and query.
    let pager = FilePager::open_path(&path, PAGE_SIZE).expect("reopen store");
    let mut tree = PagedBTree::open(pager).expect("reopen tree");
    let expected = OWNERS as u64 - OWNERS.div_ceil(3) as u64;
    assert_eq!(tree.len(), expected, "count survives drop/reopen");
    assert!(
        tree.get(&key(0)).expect("get").is_none(),
        "deleted stays deleted"
    );
    assert!(tree.get(&key(1)).expect("get").is_some(), "kept stays kept");
    let window = tree.range(&key(100), &key(199)).expect("range").len();
    let stats = tree.store_mut().io_stats();
    println!(
        "reopened from disk: {} owners survived drop/reopen, range [100,199] has {} entries",
        tree.len(),
        window
    );
    println!(
        "cold reads: {} logical / {} physical ({} cache hits)",
        stats.logical_reads, stats.physical_reads, stats.cache_hits
    );

    std::fs::remove_dir_all(&dir).ok();
}
