//! # oo-index-config
//!
//! A reproduction of **“On the Selection of Optimal Index Configuration in
//! OO Databases”** (R.S. Choenni, E. Bertino, H.M. Blanken, T. Chang,
//! *ICDE 1994*): given a path through an object-oriented database's
//! aggregation hierarchy and the workload on its classes, select the
//! cheapest way to index it — splitting the path into subpaths and
//! allocating the best of the MX/MIX/NIX organizations to each.
//!
//! The workspace is re-exported here as a facade:
//!
//! * [`schema`] — classes, inheritance/aggregation hierarchies, paths;
//! * [`storage`] — oids, typed values, the page-access-counting store,
//!   the one-class-per-page object heap, and the [`storage::paged`]
//!   `PageStore` trait the durable stack is generic over;
//! * [`pager`] — durable paged storage: the file-backed pager (header
//!   page, freelist, undo-journal commits) with an LRU page cache, plus
//!   the crash-injection harness (`OIC_PAGE_CACHE` sizes the cache);
//! * [`btree`] — the chained-leaf B+-tree with overflow records, and its
//!   durable twin [`btree::PagedBTree`] serialized to `PageStore` pages;
//! * [`index`] — real SIX/IIX/MX/MIX/NIX structures and a naive evaluator;
//! * [`cost`] — the analytic page-access model (Yao, `CRL/CML/CRT/CMT`,
//!   per-organization costs, `CMD`);
//! * [`workload`] — load distributions, subpath load derivation, the
//!   capture layer (replayable event logs, decayed rate estimation) behind
//!   the online tuning loop, and the frequent-subpath miner gating
//!   candidate admission;
//! * [`exec`] — the offline-friendly work-stealing thread pool behind the
//!   advisor's parallel stages (`OIC_THREADS`, bit-identical plans);
//! * [`core`] — index configurations, the cost matrix, branch-and-bound and
//!   polynomial-DP selection, the shared candidate space, the workload-scale
//!   advisor, and the Section 6 extensions;
//! * [`sim`] — synthetic databases, synthetic multi-path workloads, and the
//!   analytic-vs-measured validation.
//!
//! ## Quickstart
//!
//! ```
//! use oo_index_config::prelude::*;
//!
//! // The paper's running example: schema of Figure 1, path Pexa =
//! // Per.owns.man.divs.name, Figure 7 statistics and workload.
//! let (schema, _) = oo_index_config::schema::fixtures::paper_schema();
//! let (path, chars) = oo_index_config::cost::characteristics::example51(&schema);
//! let ld = oo_index_config::workload::example51_load(&schema, &path);
//!
//! let rec = Advisor::new(&schema, &path, &chars, &ld)
//!     .with_params(CostParams::paper())
//!     .recommend();
//! // The paper's optimal configuration:
//! // {(Person.owns.man, NIX), (Company.divs.name, MX)}.
//! assert_eq!(rec.selection.best.degree(), 2);
//! assert_eq!(
//!     rec.selection.best.pairs(),
//!     &[
//!         (SubpathId { start: 1, end: 2 }, Choice::Index(Org::Nix)),
//!         (SubpathId { start: 3, end: 4 }, Choice::Index(Org::Mx)),
//!     ]
//! );
//! assert!(rec.config_rendering.contains("Person.owns.man"));
//! assert!(rec.config_rendering.contains("Company.divs.name"));
//! println!("{rec}");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use oic_btree as btree;
pub use oic_core as core;
pub use oic_cost as cost;
pub use oic_exec as exec;
pub use oic_index as index;
pub use oic_pager as pager;
pub use oic_schema as schema;
pub use oic_sim as sim;
pub use oic_storage as storage;
pub use oic_workload as workload;

/// Most-used types in one import.
pub mod prelude {
    pub use oic_btree::PagedBTree;
    pub use oic_core::{
        exhaustive, exhaustive_frontier, frontier_dp, opt_ind_con, opt_ind_con_dp, Advisor,
        BudgetedWorkloadPlan, CandidateId, CandidateSpace, Choice, CostMatrix, FrontierPoint,
        FrontierResult, IndexConfiguration, MigrationAction, MigrationEnvelope, MigrationError,
        MigrationPlanner, MigrationSchedule, MigrationStep, OnlineTuner, PathId, Recommendation,
        SelectionResult, TuningPolicy, WhatIfReport, WorkloadAdvisor, WorkloadPlan,
    };
    pub use oic_cost::{ClassStats, CostModel, CostParams, Org, PathCharacteristics};
    pub use oic_exec::Executor;
    pub use oic_pager::{FilePager, MemPager};
    pub use oic_schema::{
        AtomicType, Attribute, Cardinality, ClassId, Path, PathSignature, Schema, SchemaBuilder,
        SubpathId,
    };
    pub use oic_storage::{MemStore, Oid, Value};
    pub use oic_workload::{
        CaptureError, EstimatorConfig, EventLog, LoadDistribution, MiningOutcome, MiningPolicy,
        PathKey, RateEstimator, Triplet, WorkloadEvent,
    };
}
